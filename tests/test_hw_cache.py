"""Tests for the LRU cache simulator."""

import numpy as np
import pytest

from repro.hardware.cache import CacheStats, LRUCache, simulate_interleaved


class TestLRUCache:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_miss_then_hit(self):
        c = LRUCache(1000)
        assert c.access("a", 100) is False
        assert c.access("a", 100) is True

    def test_eviction_at_capacity(self):
        c = LRUCache(250)
        c.access("a", 100)
        c.access("b", 100)
        c.access("c", 100)  # evicts "a"
        assert "a" not in c
        assert "b" in c and "c" in c
        assert c.used_bytes <= 250

    def test_lru_order_respected(self):
        c = LRUCache(250)
        c.access("a", 100)
        c.access("b", 100)
        c.access("a", 100)  # refresh a
        c.access("c", 100)  # evicts b, not a
        assert "a" in c and "b" not in c

    def test_oversized_object_bypasses(self):
        c = LRUCache(100)
        assert c.access("big", 200) is False
        assert "big" not in c
        assert c.used_bytes == 0

    def test_zero_capacity_all_miss(self):
        c = LRUCache(0)
        assert c.access("a", 1) is False
        assert c.access("a", 1) is False

    def test_invalidate(self):
        c = LRUCache(1000)
        c.access("a", 100)
        assert c.invalidate("a") is True
        assert c.invalidate("a") is False
        assert c.used_bytes == 0

    def test_clear(self):
        c = LRUCache(1000)
        c.access("a", 100)
        c.clear()
        assert c.num_entries == 0 and c.used_bytes == 0

    def test_access_many_returns_hit_mask(self):
        c = LRUCache(10_000)
        keys = np.array([1, 2, 1, 2, 3])
        mask = c.access_many(keys, 100)
        np.testing.assert_array_equal(mask, [False, False, True, True, False])
        stats = CacheStats.from_mask(mask)
        assert stats.hits == 2 and stats.misses == 3
        assert stats.hit_ratio == pytest.approx(0.4)

    def test_access_many_accumulates_stats_in_place(self):
        c = LRUCache(10_000)
        stats = CacheStats()
        c.access_many(np.array([1, 2]), 100, stats=stats)
        c.access_many(np.array([2, 3]), 100, stats=stats)
        assert stats.hits == 1 and stats.misses == 3


class TestCacheStats:
    def test_empty_ratio_zero(self):
        assert CacheStats().hit_ratio == 0.0

    def test_merge(self):
        merged = CacheStats(1, 2).merge(CacheStats(3, 4))
        assert merged.hits == 4 and merged.misses == 6


class TestInterleaved:
    def test_separate_caches_do_not_interact(self):
        rng = np.random.default_rng(0)
        hot = rng.integers(0, 50, 2000)       # fits easily
        wide = rng.integers(0, 100_000, 2000)  # thrashes
        a_alone = LRUCache(100 * 64)
        sa = CacheStats.from_mask(a_alone.access_many(hot, 64))
        a_part, b_part = LRUCache(100 * 64), LRUCache(100 * 64)
        sa2, _ = simulate_interleaved(a_part, b_part, hot, wide, 64)
        assert sa2.hit_ratio == pytest.approx(sa.hit_ratio, abs=0.02)

    def test_shared_cache_degrades_stream_a(self):
        rng = np.random.default_rng(1)
        hot = rng.integers(0, 200, 5000)
        wide = rng.integers(0, 100_000, 20_000)
        alone = CacheStats.from_mask(LRUCache(300 * 64).access_many(hot, 64))
        shared = LRUCache(300 * 64)
        degraded, _ = simulate_interleaved(
            shared, None, hot, wide, 64, burst_a=64, burst_b=512
        )
        assert degraded.hit_ratio < alone.hit_ratio

    def test_key_offset_prevents_aliasing(self):
        same = np.arange(100)
        cache = LRUCache(10_000 * 64)
        sa, sb = simulate_interleaved(cache, None, same, same, 64)
        # stream B's identical ids are offset: its first touches all miss
        assert sb.hits == 0

    def test_all_accesses_accounted(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 100, 777)
        b = rng.integers(0, 100, 333)
        sa, sb = simulate_interleaved(LRUCache(1000), None, a, b, 10)
        assert sa.accesses == 777
        assert sb.accesses == 333

    def test_matches_seed_per_key_interleave(self):
        """The batched merge replays the seed burst loop exactly."""
        rng = np.random.default_rng(3)
        a = rng.integers(0, 300, 2500)
        b = rng.integers(0, 2000, 4100)
        ref_cache = LRUCache(64 * 16)
        ref_a, ref_b = CacheStats(), CacheStats()
        ia = ib = 0
        while ia < len(a) or ib < len(b):
            end_a = min(ia + 128, len(a))
            for k in a[ia:end_a]:
                ref_a.record(np.array([ref_cache.access(int(k), 16)]))
            ia = end_a
            end_b = min(ib + 512, len(b))
            for k in b[ib:end_b]:
                ref_b.record(
                    np.array([ref_cache.access(int(k) + (1 << 40), 16)])
                )
            ib = end_b
        got_a, got_b = simulate_interleaved(
            LRUCache(64 * 16), None, a, b, 16, burst_a=128, burst_b=512
        )
        assert (got_a.hits, got_a.misses) == (ref_a.hits, ref_a.misses)
        assert (got_b.hits, got_b.misses) == (ref_b.hits, ref_b.misses)

    def test_batched_cache_drop_in(self):
        """simulate_interleaved accepts BatchLRUCache transparently."""
        from repro.hardware.vectorcache import BatchLRUCache

        rng = np.random.default_rng(4)
        a = rng.integers(0, 300, 3000)
        b = rng.integers(0, 3000, 6000)
        ref = simulate_interleaved(LRUCache(128 * 8), None, a, b, 8)
        got = simulate_interleaved(BatchLRUCache(128 * 8), None, a, b, 8)
        assert (got[0].hits, got[1].hits) == (ref[0].hits, ref[1].hits)

    # ----------------------------------------------------------- edge cases
    def test_zero_length_streams(self):
        sa, sb = simulate_interleaved(
            LRUCache(1000),
            None,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            10,
        )
        assert sa.accesses == 0 and sb.accesses == 0
        a = np.arange(10)
        sa, sb = simulate_interleaved(
            LRUCache(1000), None, a, np.empty(0, dtype=np.int64), 10
        )
        assert sa.accesses == 10 and sb.accesses == 0
        sa, sb = simulate_interleaved(
            LRUCache(1000), LRUCache(1000), np.empty(0, dtype=np.int64), a, 10
        )
        assert sa.accesses == 0 and sb.accesses == 10

    def test_capacity_smaller_than_one_row(self):
        # every access bypasses (un-cacheable rows), nothing ever hits
        a = np.array([1, 1, 1])
        b = np.array([2, 2])
        sa, sb = simulate_interleaved(LRUCache(4), None, a, b, row_bytes=10)
        assert sa.hits == 0 and sb.hits == 0
        cache = LRUCache(4)
        simulate_interleaved(cache, None, a, b, row_bytes=10)
        assert cache.num_entries == 0 and cache.used_bytes == 0

    def test_duplicate_keys_within_one_batch(self):
        c = LRUCache(10 * 8)
        mask = c.access_many(np.array([5, 5, 5, 7, 5]), 8)
        np.testing.assert_array_equal(
            mask, [False, True, True, False, True]
        )
