"""Tests for the LRU cache simulator."""

import numpy as np
import pytest

from repro.hardware.cache import CacheStats, LRUCache, simulate_interleaved


class TestLRUCache:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_miss_then_hit(self):
        c = LRUCache(1000)
        assert c.access("a", 100) is False
        assert c.access("a", 100) is True

    def test_eviction_at_capacity(self):
        c = LRUCache(250)
        c.access("a", 100)
        c.access("b", 100)
        c.access("c", 100)  # evicts "a"
        assert "a" not in c
        assert "b" in c and "c" in c
        assert c.used_bytes <= 250

    def test_lru_order_respected(self):
        c = LRUCache(250)
        c.access("a", 100)
        c.access("b", 100)
        c.access("a", 100)  # refresh a
        c.access("c", 100)  # evicts b, not a
        assert "a" in c and "b" not in c

    def test_oversized_object_bypasses(self):
        c = LRUCache(100)
        assert c.access("big", 200) is False
        assert "big" not in c
        assert c.used_bytes == 0

    def test_zero_capacity_all_miss(self):
        c = LRUCache(0)
        assert c.access("a", 1) is False
        assert c.access("a", 1) is False

    def test_invalidate(self):
        c = LRUCache(1000)
        c.access("a", 100)
        assert c.invalidate("a") is True
        assert c.invalidate("a") is False
        assert c.used_bytes == 0

    def test_clear(self):
        c = LRUCache(1000)
        c.access("a", 100)
        c.clear()
        assert c.num_entries == 0 and c.used_bytes == 0

    def test_access_many_stats(self):
        c = LRUCache(10_000)
        keys = np.array([1, 2, 1, 2, 3])
        stats = c.access_many(keys, 100)
        assert stats.hits == 2 and stats.misses == 3
        assert stats.hit_ratio == pytest.approx(0.4)


class TestCacheStats:
    def test_empty_ratio_zero(self):
        assert CacheStats().hit_ratio == 0.0

    def test_merge(self):
        merged = CacheStats(1, 2).merge(CacheStats(3, 4))
        assert merged.hits == 4 and merged.misses == 6


class TestInterleaved:
    def test_separate_caches_do_not_interact(self):
        rng = np.random.default_rng(0)
        hot = rng.integers(0, 50, 2000)       # fits easily
        wide = rng.integers(0, 100_000, 2000)  # thrashes
        a_alone = LRUCache(100 * 64)
        sa = a_alone.access_many(hot, 64)
        a_part, b_part = LRUCache(100 * 64), LRUCache(100 * 64)
        sa2, _ = simulate_interleaved(a_part, b_part, hot, wide, 64)
        assert sa2.hit_ratio == pytest.approx(sa.hit_ratio, abs=0.02)

    def test_shared_cache_degrades_stream_a(self):
        rng = np.random.default_rng(1)
        hot = rng.integers(0, 200, 5000)
        wide = rng.integers(0, 100_000, 20_000)
        alone = LRUCache(300 * 64).access_many(hot, 64)
        shared = LRUCache(300 * 64)
        degraded, _ = simulate_interleaved(
            shared, None, hot, wide, 64, burst_a=64, burst_b=512
        )
        assert degraded.hit_ratio < alone.hit_ratio

    def test_key_offset_prevents_aliasing(self):
        same = np.arange(100)
        cache = LRUCache(10_000 * 64)
        sa, sb = simulate_interleaved(cache, None, same, same, 64)
        # stream B's identical ids are offset: its first touches all miss
        assert sb.hits == 0

    def test_all_accesses_accounted(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 100, 777)
        b = rng.integers(0, 100, 333)
        sa, sb = simulate_interleaved(LRUCache(1000), None, a, b, 10)
        assert sa.accesses == 777
        assert sb.accesses == 333
