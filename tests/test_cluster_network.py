"""Tests for the network model and collective cost models."""

import numpy as np
import pytest

from repro.cluster.collectives import (
    CollectiveCostModel,
    allgather_naive_seconds,
    allgather_ring_seconds,
    allgather_tree_seconds,
    fit_log_trend,
)
from repro.cluster.network import GBE_100, INFINIBAND_EDR

TB = 1024 ** 4
GB = 1024 ** 3


class TestNetworkLink:
    def test_paper_example_20tb_over_100gbe(self):
        """Syncing 20 TB over 100GbE takes over 26 minutes (Section I)."""
        seconds = GBE_100.transfer_seconds(20 * TB)
        assert seconds > 26 * 60

    def test_paper_example_200tb_over_4_hours(self):
        """Full 200 TB sync takes over four hours (Section II-C)."""
        assert GBE_100.transfer_seconds(200 * TB) > 4 * 3600

    def test_zero_volume_costs_latency_only(self):
        assert GBE_100.transfer_seconds(0) == pytest.approx(
            GBE_100.latency_ms / 1e3
        )

    def test_contention_slows_transfer(self):
        base = GBE_100.transfer_seconds(1 * GB)
        contended = GBE_100.transfer_seconds(1 * GB, contention=0.5)
        assert contended > 1.9 * base

    def test_validation(self):
        with pytest.raises(ValueError):
            GBE_100.transfer_seconds(-1)
        with pytest.raises(ValueError):
            GBE_100.transfer_seconds(1, contention=1.0)

    def test_scaled_link(self):
        double = GBE_100.scaled(2.0)
        assert double.bytes_per_second == pytest.approx(
            2 * GBE_100.bytes_per_second
        )


class TestCollectives:
    def test_single_node_free(self):
        m = CollectiveCostModel()
        assert m.allgather_tree(1, 1e9) == 0.0
        assert m.allgather_ring(1, 1e9) == 0.0
        assert m.tree_merge(1, 1e9) == 0.0
        assert m.broadcast_tree(1, 1e9) == 0.0

    def test_tree_beats_naive(self):
        for n in (4, 8, 16):
            assert allgather_tree_seconds(n, 1 * GB) < allgather_naive_seconds(
                n, 1 * GB
            )

    def test_ring_linear_in_nodes(self):
        t8 = allgather_ring_seconds(8, 1 * GB)
        t16 = allgather_ring_seconds(16, 1 * GB)
        assert t16 / t8 == pytest.approx(15 / 7, rel=0.01)

    def test_tree_merge_logarithmic(self):
        m = CollectiveCostModel(INFINIBAND_EDR)
        t4 = m.tree_merge(4, 1 * GB)
        t16 = m.tree_merge(16, 1 * GB)
        t64 = m.tree_merge(64, 1 * GB)
        # doubling log2(N) doubles the time
        assert t16 == pytest.approx(2 * t4, rel=0.01)
        assert t64 == pytest.approx(3 * t4, rel=0.01)

    def test_invalid_node_count(self):
        m = CollectiveCostModel()
        with pytest.raises(ValueError):
            m.allgather_tree(0, 1)


class TestLogTrendFit:
    def test_recovers_known_trend(self):
        nodes = np.array([2, 4, 8, 16])
        times = 3.0 + 2.0 * np.log2(nodes)
        a, b = fit_log_trend(nodes, times)
        assert a == pytest.approx(3.0)
        assert b == pytest.approx(2.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_log_trend(np.array([2]), np.array([1.0]))
