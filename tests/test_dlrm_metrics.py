"""Tests for AUC, log loss, calibration, and streaming AUC."""

import numpy as np
import pytest

from repro.dlrm.metrics import StreamingAUC, auc_roc, calibration_ratio, log_loss


class TestAUC:
    def test_perfect_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_roc(labels, scores) == 1.0

    def test_inverted_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_roc(labels, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 20000)
        scores = rng.random(20000)
        assert auc_roc(labels, scores) == pytest.approx(0.5, abs=0.02)

    def test_ties_get_half_credit(self):
        labels = np.array([0, 1])
        scores = np.array([0.5, 0.5])
        assert auc_roc(labels, scores) == pytest.approx(0.5)

    def test_single_class_is_nan(self):
        rng = np.random.default_rng(7)
        assert np.isnan(auc_roc(np.ones(5), rng.random(5)))
        assert np.isnan(auc_roc(np.zeros(5), rng.random(5)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            auc_roc(np.ones(3), np.ones(4))

    def test_matches_naive_pairwise(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, 200).astype(float)
        scores = rng.random(200)
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        wins = (pos[:, None] > neg[None, :]).sum()
        ties = (pos[:, None] == neg[None, :]).sum()
        naive = (wins + 0.5 * ties) / (len(pos) * len(neg))
        assert auc_roc(labels, scores) == pytest.approx(naive, abs=1e-12)


class TestLogLoss:
    def test_perfect_predictions(self):
        labels = np.array([0.0, 1.0])
        scores = np.array([0.0, 1.0])
        assert log_loss(labels, scores) < 1e-10

    def test_uniform_prediction(self):
        labels = np.array([0.0, 1.0])
        scores = np.array([0.5, 0.5])
        assert log_loss(labels, scores) == pytest.approx(np.log(2))

    def test_worse_predictions_cost_more(self):
        labels = np.array([1.0])
        assert log_loss(labels, np.array([0.3])) > log_loss(
            labels, np.array([0.7])
        )


class TestCalibration:
    def test_perfectly_calibrated(self):
        labels = np.array([1.0, 0.0, 1.0, 0.0])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert calibration_ratio(labels, scores) == pytest.approx(1.0)

    def test_no_positives_is_inf(self):
        assert calibration_ratio(np.zeros(4), np.full(4, 0.5)) == np.inf


class TestStreamingAUC:
    def test_empty_is_nan(self):
        assert np.isnan(StreamingAUC().value())

    def test_matches_batch_auc(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 2, 500).astype(float)
        scores = rng.random(500)
        s = StreamingAUC(window=1000)
        s.update(labels[:250], scores[:250])
        s.update(labels[250:], scores[250:])
        assert s.value() == pytest.approx(auc_roc(labels, scores))

    def test_window_eviction(self):
        s = StreamingAUC(window=10)
        s.update(np.ones(8), np.full(8, 0.9))
        s.update(np.zeros(8), np.full(8, 0.1))
        assert s.count == 10
        # only the last 10: 2 positives at 0.9, 8 negatives at 0.1
        assert s.value() == 1.0

    def test_reset(self):
        s = StreamingAUC()
        s.update(np.array([0, 1]), np.array([0.1, 0.9]))
        s.reset()
        assert s.count == 0
