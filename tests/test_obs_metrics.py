"""Metrics plane: histogram accuracy vs np.percentile, registry, exporters."""

import json

import numpy as np
import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SNAPSHOT_SCHEMA_VERSION,
    registry,
    render_json,
    render_prometheus,
    set_enabled,
    snapshot,
    validate_snapshot,
)


class TestHistogram:
    def test_quantiles_match_np_percentile_at_1e6_samples(self):
        # Acceptance criterion: within one bucket width (factor `growth`)
        # of np.percentile on a million-sample latency-shaped stream.
        rng = np.random.default_rng(12345)
        values = rng.lognormal(mean=1.0, sigma=0.8, size=1_000_000)
        h = Histogram("test.latency_ms", lo=1e-3, hi=1e5, growth=1.02)
        h.observe_many(values)
        for q in (50.0, 90.0, 95.0, 99.0, 99.9):
            exact = float(np.percentile(values, q))
            est = h.quantile(q)
            assert exact / h.growth <= est <= exact * h.growth, (
                f"p{q}: histogram {est} vs exact {exact}"
            )

    def test_single_bincount_pass_equals_scalar_observes(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(5.0, size=512)
        batched = Histogram("test.batched")
        batched.observe_many(values)
        scalar = Histogram("test.scalar")
        for v in values:
            scalar.observe(float(v))
        np.testing.assert_array_equal(batched.counts, scalar.counts)
        assert batched.count == scalar.count == 512
        assert batched.sum == pytest.approx(scalar.sum)

    def test_constant_stream_reads_back_exactly(self):
        h = Histogram("test.constant")
        h.observe_many(np.full(1000, 7.25))
        assert h.quantile(50) == pytest.approx(7.25)
        assert h.quantile(99) == pytest.approx(7.25)
        assert h.min == pytest.approx(7.25)
        assert h.max == pytest.approx(7.25)
        assert h.mean == pytest.approx(7.25)

    def test_underflow_and_overflow_buckets(self):
        h = Histogram("test.range", lo=1.0, hi=100.0, growth=1.5)
        h.observe_many(np.array([0.001, 1e6]))
        assert h.count == 2
        assert h.counts[0] == 1  # underflow
        assert h.counts[-1] == 1  # overflow
        # Quantiles clamp into the observed range even outside the lattice.
        assert h.quantile(99) == pytest.approx(1e6)
        assert h.quantile(1) == pytest.approx(0.001)

    def test_empty_histogram_reads_nan(self):
        h = Histogram("test.empty")
        assert np.isnan(h.quantile(50))
        assert np.isnan(h.min) and np.isnan(h.max) and np.isnan(h.mean)

    def test_reset_zeroes_in_place(self):
        h = Histogram("test.reset")
        h.observe_many(np.arange(10, dtype=np.float64) + 1.0)
        counts_ref = h.counts
        h.reset()
        assert h.count == 0 and h.sum == 0.0
        assert counts_ref is h.counts and not counts_ref.any()

    def test_bad_parameters_raise(self):
        with pytest.raises(ValueError):
            Histogram("test.bad", lo=0.0)
        with pytest.raises(ValueError):
            Histogram("test.bad", lo=10.0, hi=1.0)
        with pytest.raises(ValueError):
            Histogram("test.bad", growth=1.0)
        h = Histogram("test.ok")
        with pytest.raises(ValueError):
            h.quantile(101)


class TestCounterGauge:
    def test_counter_add_and_inc(self):
        c = Counter("test.counter")
        c.add(5)
        c.inc()
        assert c.value == 6
        with pytest.raises(ValueError):
            c.add(-1)

    def test_gauge_set(self):
        g = Gauge("test.gauge")
        g.set(3)
        assert g.value == 3.0
        g.set(-1.5)
        assert g.value == -1.5


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("a.b")
        assert reg.counter("a.b") is a
        assert "a.b" in reg and reg.get("a.b") is a

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a.b")

    def test_name_validation(self):
        reg = MetricsRegistry()
        for bad in ("NoDots", "Upper.case", "trailing.", ".leading", "a..b"):
            with pytest.raises(ValueError):
                reg.counter(bad)
        reg.counter("fine.dotted_name.v2")

    def test_reset_preserves_handle_identity(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        h = reg.histogram("a.h")
        c.add(3)
        h.observe_many(np.ones(4))
        reg.reset()
        assert reg.counter("a.b") is c and c.value == 0
        assert reg.histogram("a.h") is h and h.count == 0

    def test_by_kind_and_names_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("z.g")
        reg.counter("a.c")
        reg.counter("m.c")
        assert reg.names() == ["a.c", "m.c", "z.g"]
        assert [c.name for c in reg.by_kind(Counter)] == ["a.c", "m.c"]
        assert len(reg) == 3

    def test_global_registry_enabled_flag(self):
        reg = registry()
        assert reg is registry()
        try:
            set_enabled(False)
            assert reg.enabled is False
        finally:
            set_enabled(True)
        assert reg.enabled is True


class TestExporters:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("plane.requests", help="requests seen").add(42)
        reg.gauge("plane.version").set(7)
        h = reg.histogram("plane.latency_ms", lo=0.01, hi=1e4)
        h.observe_many(np.random.default_rng(0).exponential(5.0, 1000))
        return reg

    def test_snapshot_validates_against_schema(self):
        snap = snapshot(self._populated())
        assert snap["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert validate_snapshot(snap) == []
        assert snap["counters"]["plane.requests"]["value"] == 42
        hist = snap["histograms"]["plane.latency_ms"]
        assert sum(n for _, n in hist["nonzero_buckets"]) == 1000

    def test_render_json_is_canonical_and_parseable(self):
        reg = self._populated()
        payload = json.loads(render_json(reg))
        assert validate_snapshot(payload) == []
        assert render_json(reg) == render_json(reg)

    def test_render_prometheus_format(self):
        text = render_prometheus(self._populated())
        assert "# TYPE repro_plane_requests counter" in text
        assert "repro_plane_requests 42" in text
        assert "# TYPE repro_plane_version gauge" in text
        assert "# TYPE repro_plane_latency_ms histogram" in text
        assert 'repro_plane_latency_ms_bucket{le="+Inf"} 1000' in text
        assert "repro_plane_latency_ms_count 1000" in text

    def test_validate_snapshot_catches_corruption(self):
        snap = snapshot(self._populated())
        assert validate_snapshot({"schema_version": 99}) != []
        bad = json.loads(json.dumps(snap))
        bad["histograms"]["plane.latency_ms"]["nonzero_buckets"][0][1] += 1
        assert any("sum to count" in e for e in validate_snapshot(bad))
        bad2 = json.loads(json.dumps(snap))
        bad2["counters"]["plane.requests"]["value"] = -1
        assert any("non-negative" in e for e in validate_snapshot(bad2))


class TestInstrumentationFeeds:
    """Instrumented planes visibly feed the process registry."""

    def test_cache_counters_track_hit_masks(self):
        from repro.hardware.vectorcache import BatchLRUCache

        reg = registry()
        hits = reg.counter("hardware.cache.hits")
        misses = reg.counter("hardware.cache.misses")
        before = (hits.value, misses.value)
        cache = BatchLRUCache(capacity_bytes=64 * 10)
        keys = np.array([1, 2, 3, 1, 2, 3], dtype=np.int64)
        result = cache.access_many(keys, 64)
        assert hits.value - before[0] == result.num_hits == 3
        assert misses.value - before[1] == result.num_misses == 3

    def test_disabled_registry_skips_counting(self):
        from repro.hardware.vectorcache import BatchLRUCache

        reg = registry()
        hits = reg.counter("hardware.cache.hits")
        cache = BatchLRUCache(capacity_bytes=64 * 10)
        try:
            set_enabled(False)
            before = hits.value
            cache.access_many(np.array([5, 5, 5], dtype=np.int64), 64)
        finally:
            set_enabled(True)
        assert hits.value == before

    def test_shardstore_publish_updates_store_gauges(self):
        from repro.cluster.shardstore import ShardedParameterStore

        reg = registry()
        store = ShardedParameterStore(num_shards=4, row_bytes=32, row_dim=4)
        publishes = reg.counter("shardstore.store.publishes")
        before = publishes.value
        store.publish_batch(
            "t", np.arange(8, dtype=np.int64), np.ones((8, 4))
        )
        assert publishes.value == before + 1
        assert reg.gauge("shardstore.store.version").value == 1.0
        assert reg.gauge("shardstore.store.resident_rows").value >= 8.0
