"""Tests for the inference-log ring buffer."""

import numpy as np
import pytest

from repro.data.stream import InferenceLogBuffer
from repro.data.synthetic import Batch


def _batch(ts, n=4, num_dense=2, num_fields=2, seed=0):
    rng = np.random.default_rng(seed)
    return Batch(
        timestamp=ts,
        dense=rng.normal(size=(n, num_dense)),
        sparse_ids=rng.integers(0, 10, size=(n, num_fields)),
        labels=rng.integers(0, 2, size=n).astype(float),
    )


class TestRetention:
    def test_validation(self):
        with pytest.raises(ValueError):
            InferenceLogBuffer(retention_s=0)

    def test_appends_accumulate(self):
        buf = InferenceLogBuffer(retention_s=100)
        buf.append(_batch(0.0))
        buf.append(_batch(10.0))
        assert len(buf) == 8

    def test_old_batches_evicted(self):
        buf = InferenceLogBuffer(retention_s=100)
        buf.append(_batch(0.0))
        buf.append(_batch(50.0))
        buf.append(_batch(150.0))
        assert len(buf) == 8  # t=0 evicted (150 - 0 > 100)
        assert buf.total_evicted == 4

    def test_max_samples_cap(self):
        buf = InferenceLogBuffer(retention_s=1e9, max_samples=10)
        for i in range(5):
            buf.append(_batch(float(i), n=4))
        assert len(buf) <= 10 + 4  # at most one batch over before eviction
        assert len(buf) == 8

    def test_stats(self):
        buf = InferenceLogBuffer(retention_s=100)
        assert buf.stats().num_samples == 0
        buf.append(_batch(5.0))
        buf.append(_batch(25.0))
        st = buf.stats(bytes_per_sample=100)
        assert st.num_batches == 2
        assert st.span_seconds == pytest.approx(20.0)
        assert st.approx_bytes == 800


class TestSampling:
    def test_empty_buffer_returns_none(self):
        buf = InferenceLogBuffer(retention_s=10)
        assert buf.sample_minibatch(4, np.random.default_rng(0)) is None
        assert buf.drain_window() is None

    def test_minibatch_shapes(self):
        buf = InferenceLogBuffer(retention_s=100)
        buf.append(_batch(0.0, n=16))
        mb = buf.sample_minibatch(8, np.random.default_rng(0))
        assert mb.dense.shape == (8, 2)
        assert mb.sparse_ids.shape == (8, 2)
        assert mb.labels.shape == (8,)

    def test_minibatch_draws_from_window_content(self):
        buf = InferenceLogBuffer(retention_s=100)
        b = _batch(0.0, n=16, seed=3)
        buf.append(b)
        mb = buf.sample_minibatch(50, np.random.default_rng(1))
        # every sampled row must exist in the source batch
        for row in mb.sparse_ids:
            assert any((b.sparse_ids == row).all(axis=1))

    def test_drain_window_concatenates(self):
        buf = InferenceLogBuffer(retention_s=100)
        buf.append(_batch(0.0, n=4))
        buf.append(_batch(10.0, n=6))
        drained = buf.drain_window()
        assert drained.size == 10
        assert drained.timestamp == 10.0

    def test_sampling_spans_batches(self):
        buf = InferenceLogBuffer(retention_s=100)
        b1 = _batch(0.0, n=4, seed=1)
        b2 = _batch(1.0, n=4, seed=2)
        b1.labels[:] = 0.0
        b2.labels[:] = 1.0
        buf.append(b1)
        buf.append(b2)
        mb = buf.sample_minibatch(200, np.random.default_rng(0))
        assert 0.0 < mb.labels.mean() < 1.0
