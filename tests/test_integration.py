"""End-to-end integration tests across subsystem boundaries."""

import numpy as np
import pytest

from repro.cluster.nodes import InferenceNode
from repro.cluster.parameter_server import ParameterServer
from repro.core.liveupdate import LiveUpdate, LiveUpdateConfig
from repro.core.trainer import TrainerConfig
from repro.data.synthetic import DriftingCTRStream, StreamConfig
from repro.dlrm.metrics import auc_roc
from repro.dlrm.model import DLRM, DLRMConfig
from repro.dlrm.optim import RowwiseAdagrad
from repro.experiments.accuracy import AccuracyConfig, run_strategy
from repro.experiments.factories import delta_update, live_update, no_update

TABLE_SIZES = (600, 400)


def _world(seed=0):
    model = DLRM(
        DLRMConfig(
            num_dense=4,
            embedding_dim=16,
            table_sizes=TABLE_SIZES,
            bottom_mlp=(16,),
            top_mlp=(32,),
            seed=seed,
        )
    )
    stream = DriftingCTRStream(
        StreamConfig(table_sizes=TABLE_SIZES, num_dense=4, seed=seed + 1)
    )
    return model, stream


class TestTrainServeLoop:
    def test_model_learns_the_stream(self):
        model, stream = _world()
        opt = RowwiseAdagrad(lr=0.05)
        for _ in range(150):
            b = stream.next_batch(256, duration_s=1.0)
            model.train_step(b.dense, b.sparse_ids, b.labels, opt)
        ev = stream.eval_batch(4000)
        auc = auc_roc(ev.labels, model.predict(ev.dense, ev.sparse_ids))
        assert auc > 0.62

    def test_staleness_decays_auc(self):
        model, stream = _world()
        opt = RowwiseAdagrad(lr=0.05)
        for _ in range(150):
            b = stream.next_batch(256, duration_s=1.0)
            model.train_step(b.dense, b.sparse_ids, b.labels, opt)

        def auc_now():
            evs = [stream.eval_batch(4000) for _ in range(3)]
            return np.mean(
                [auc_roc(e.labels, model.predict(e.dense, e.sparse_ids)) for e in evs]
            )

        fresh = auc_now()
        stream.advance(3600.0)
        stale = auc_now()
        assert stale < fresh - 0.02

    def test_lora_recovers_staleness(self):
        """The paper's core loop: freeze base, adapt with LoRA, win AUC."""
        model, stream = _world()
        opt = RowwiseAdagrad(lr=0.05)
        for _ in range(150):
            b = stream.next_batch(256, duration_s=1.0)
            model.train_step(b.dense, b.sparse_ids, b.labels, opt)
        stream.advance(1200.0)

        server = ParameterServer(row_bytes=128)
        node = InferenceNode(model.copy(), server)
        lu = LiveUpdate(
            node,
            trainer_cluster=None,
            trainer_config=TrainerConfig(
                rank=8, lr=0.25, dynamic_rank=False, dynamic_prune=False
            ),
            config=LiveUpdateConfig(steps_per_slot=4),
        )
        for _ in range(30):
            lu.on_serving_batch(stream.next_batch(256, local=True))
            lu.on_slot(now=stream.now)
            stream.advance(10.0)
        evs = [stream.eval_batch(3000, local=True) for _ in range(3)]
        base = np.mean(
            [auc_roc(e.labels, node.predict(e)) for e in evs]
        )
        adapted = np.mean(
            [auc_roc(e.labels, node.predict(e, overlay=lu.overlay())) for e in evs]
        )
        assert adapted > base + 0.005


class TestHarnessOrdering:
    """The Table III ordering must hold on a mid-sized run."""

    @pytest.fixture(scope="class")
    def runs(self):
        cfg = AccuracyConfig(
            table_sizes=(800, 600, 400),
            horizon_s=1800.0,
            update_interval_s=600.0,
            pretrain_steps=200,
        )
        return {
            "delta": run_strategy(cfg, delta_update),
            "none": run_strategy(cfg, no_update),
            "live": run_strategy(cfg, live_update(rank=8)),
        }

    def test_liveupdate_beats_delta(self, runs):
        assert runs["live"].mean_auc > runs["delta"].mean_auc

    def test_delta_beats_noupdate(self, runs):
        assert runs["delta"].mean_auc > runs["none"].mean_auc

    def test_liveupdate_zero_network(self, runs):
        assert runs["live"].bytes_moved == 0.0
        assert runs["delta"].bytes_moved > 0.0
