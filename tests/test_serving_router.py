"""Tests for the consistent-hash request router."""

import numpy as np
import pytest

from repro.serving.router import ConsistentHashRouter


@pytest.fixture
def keys():
    return np.random.default_rng(0).integers(0, 1 << 31, 5000)


class TestRouting:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRouter([])
        with pytest.raises(ValueError):
            ConsistentHashRouter([1], virtual_nodes=0)

    def test_routes_to_known_nodes(self, keys):
        router = ConsistentHashRouter([0, 1, 2, 3])
        nodes = router.route(keys[:100])
        assert set(nodes.tolist()).issubset({0, 1, 2, 3})

    def test_sticky_per_key(self):
        router = ConsistentHashRouter([0, 1, 2])
        a = router.route_one(12345)
        b = router.route_one(12345)
        assert a == b

    def test_reasonable_balance(self, keys):
        router = ConsistentHashRouter([0, 1, 2, 3], virtual_nodes=128)
        assert router.imbalance(keys) < 1.6

    def test_single_node_gets_everything(self, keys):
        router = ConsistentHashRouter([7])
        split = router.load_split(keys[:200])
        assert split[7] == 1.0


class TestBoundedLoad:
    def test_spillover_on_saturation(self, keys):
        router = ConsistentHashRouter([0, 1], capacity_qps=10)
        router.route(keys[:100])
        assert router.stats.spilled > 0
        assert router.stats.spill_ratio > 0

    def test_no_spill_without_capacity(self, keys):
        router = ConsistentHashRouter([0, 1])
        router.route(keys[:100])
        assert router.stats.spilled == 0

    def test_window_reset_clears_load(self, keys):
        router = ConsistentHashRouter([0], capacity_qps=50)
        router.route(keys[:50])
        router.reset_window()
        before = router.stats.spilled
        router.route(keys[50:100])
        # fresh window: the first 50 fit again without spilling beyond
        assert router.stats.spilled == before


class TestRemapStability:
    def test_adding_node_remaps_small_fraction(self, keys):
        before = ConsistentHashRouter([0, 1, 2, 3], virtual_nodes=128, seed=1)
        after = ConsistentHashRouter([0, 1, 2, 3, 4], virtual_nodes=128, seed=1)
        frac = before.remap_fraction(after, keys)
        # ideal is 1/5; allow generous slack for a small ring
        assert frac < 0.45

    def test_same_layout_remaps_nothing(self, keys):
        a = ConsistentHashRouter([0, 1, 2], seed=2)
        b = ConsistentHashRouter([0, 1, 2], seed=2)
        assert a.remap_fraction(b, keys[:500]) == 0.0
