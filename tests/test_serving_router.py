"""Tests for the consistent-hash request router."""

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.serving.router import ConsistentHashRouter


@pytest.fixture
def keys():
    return np.random.default_rng(0).integers(0, 1 << 31, 5000)


class TestRouting:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRouter([])
        with pytest.raises(ValueError):
            ConsistentHashRouter([1], virtual_nodes=0)

    def test_routes_to_known_nodes(self, keys):
        router = ConsistentHashRouter([0, 1, 2, 3])
        nodes = router.route(keys[:100])
        assert set(nodes.tolist()).issubset({0, 1, 2, 3})

    def test_sticky_per_key(self):
        router = ConsistentHashRouter([0, 1, 2])
        a = router.route_one(12345)
        b = router.route_one(12345)
        assert a == b

    def test_reasonable_balance(self, keys):
        router = ConsistentHashRouter([0, 1, 2, 3], virtual_nodes=128)
        assert router.imbalance(keys) < 1.6

    def test_single_node_gets_everything(self, keys):
        router = ConsistentHashRouter([7])
        split = router.load_split(keys[:200])
        assert split[7] == 1.0


class TestBoundedLoad:
    def test_spillover_on_saturation(self, keys):
        router = ConsistentHashRouter([0, 1], capacity_qps=10)
        router.route(keys[:100])
        assert router.stats.spilled > 0
        assert router.stats.spill_ratio > 0

    def test_no_spill_without_capacity(self, keys):
        router = ConsistentHashRouter([0, 1])
        router.route(keys[:100])
        assert router.stats.spilled == 0

    def test_window_reset_clears_load(self, keys):
        router = ConsistentHashRouter([0], capacity_qps=50)
        router.route(keys[:50])
        router.reset_window()
        before = router.stats.spilled
        router.route(keys[50:100])
        # fresh window: the first 50 fit again without spilling beyond
        assert router.stats.spilled == before


class TestDeterminism:
    """Ring layout and routing must not depend on the process hash seed.

    Regression: the seed implementation used the builtin ``hash()``, which
    is salted per process via PYTHONHASHSEED, so two fleet members could
    disagree on every routing decision.
    """

    PINNED_KEYS = [0, 1, 42, 12345, 999_999_999, 2**31 - 1]

    def test_pinned_assignments(self):
        router = ConsistentHashRouter([0, 1, 2, 3], virtual_nodes=64, seed=0)
        assert router.route(np.array(self.PINNED_KEYS)).tolist() == [
            1, 0, 1, 0, 3, 2,
        ]
        other = ConsistentHashRouter([10, 20, 30], virtual_nodes=16, seed=7)
        assert other.route(np.array(self.PINNED_KEYS)).tolist() == [
            20, 10, 10, 10, 20, 20,
        ]

    def test_route_one_agrees_with_batch(self):
        router = ConsistentHashRouter([0, 1, 2, 3], seed=3)
        batch = router.assign(np.array(self.PINNED_KEYS))
        singles = [
            ConsistentHashRouter([0, 1, 2, 3], seed=3).route_one(k)
            for k in self.PINNED_KEYS
        ]
        assert batch.tolist() == singles

    @pytest.mark.parametrize("hash_seed", ["0", "42"])
    def test_identical_across_processes(self, hash_seed):
        """Routing is byte-identical under different PYTHONHASHSEED."""
        snippet = (
            "import numpy as np;"
            "from repro.serving.router import ConsistentHashRouter;"
            "r = ConsistentHashRouter([0, 1, 2, 3], virtual_nodes=64, seed=0);"
            "print(r.route(np.arange(200)).tolist())"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
        out = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, env=env, check=True,
        ).stdout.strip()
        here = ConsistentHashRouter([0, 1, 2, 3], virtual_nodes=64, seed=0)
        assert out == str(here.route(np.arange(200)).tolist())


class TestAnalysisSideEffectFree:
    """Measuring the router must not consume capacity or inflate stats."""

    def _snapshot(self, router):
        return (
            router.stats.routed,
            router.stats.spilled,
            dict(router._window_load),
        )

    def test_load_split_and_imbalance_leave_state_unchanged(self, keys):
        router = ConsistentHashRouter([0, 1, 2, 3], capacity_qps=30)
        router.route(keys[:60])  # some real traffic first
        before = self._snapshot(router)
        router.load_split(keys[:500])
        router.imbalance(keys[:500])
        assert self._snapshot(router) == before

    def test_remap_fraction_leaves_both_routers_unchanged(self, keys):
        a = ConsistentHashRouter([0, 1, 2], seed=1, capacity_qps=100)
        b = ConsistentHashRouter([0, 1, 2, 3], seed=1, capacity_qps=100)
        before_a, before_b = self._snapshot(a), self._snapshot(b)
        a.remap_fraction(b, keys[:400])
        assert self._snapshot(a) == before_a
        assert self._snapshot(b) == before_b

    def test_assign_matches_route_from_same_state(self, keys):
        router = ConsistentHashRouter([0, 1, 2], capacity_qps=50)
        preview = router.assign(keys[:120])
        actual = router.route(keys[:120])
        np.testing.assert_array_equal(preview, actual)


class TestRemapStability:
    def test_adding_node_remaps_small_fraction(self, keys):
        before = ConsistentHashRouter([0, 1, 2, 3], virtual_nodes=128, seed=1)
        after = ConsistentHashRouter([0, 1, 2, 3, 4], virtual_nodes=128, seed=1)
        frac = before.remap_fraction(after, keys)
        # ideal is 1/5; allow generous slack for a small ring
        assert frac < 0.45

    def test_same_layout_remaps_nothing(self, keys):
        a = ConsistentHashRouter([0, 1, 2], seed=2)
        b = ConsistentHashRouter([0, 1, 2], seed=2)
        assert a.remap_fraction(b, keys[:500]) == 0.0


class TestCheckedKeyCoercion:
    """Routing keys coerce through a checked dtype (no silent float paths).

    Regression for the bare ``np.asarray(...).astype(np.int64)`` that
    silently accepted float and object inputs: float64 cannot represent
    integers above 2**53, so float-typed keys collapsed neighbouring ids
    onto one ring position.
    """

    def test_float_keys_raise(self):
        router = ConsistentHashRouter([0, 1, 2])
        with pytest.raises(TypeError, match="routing_keys"):
            router.route(np.array([1.0, 2.0]))
        with pytest.raises(TypeError, match="routing_keys"):
            router.route([0.5, 1.5])

    def test_python_ints_beyond_2_53_are_exact(self):
        router = ConsistentHashRouter([0, 1, 2, 3], virtual_nodes=128)
        big = 2**53
        # a float64 round-trip maps 2**53 + 1 onto 2**53; the checked
        # int path must keep them distinct hash inputs
        hashes = router._key_hashes([big, big + 1, big + 2, big + 3])
        assert len(set(hashes.tolist())) == 4
        # and plain Python ints route identically to an int64 array
        via_list = router.assign([big + 1, big + 3])
        via_array = router.assign(np.array([big + 1, big + 3], dtype=np.int64))
        np.testing.assert_array_equal(via_list, via_array)

    def test_uint64_keys_keep_bit_pattern(self):
        router = ConsistentHashRouter([0, 1, 2])
        high = np.array([2**63 + 5, 2**64 - 1], dtype=np.uint64)
        # wrap-identical to the historical int64 round-trip
        as_signed = high.astype(np.int64)
        np.testing.assert_array_equal(
            router._key_hashes(high), router._key_hashes(as_signed)
        )

    def test_object_int_keys_are_accepted(self):
        router = ConsistentHashRouter([0, 1])
        obj = np.array([7, 2**60], dtype=object)
        exact = np.array([7, 2**60], dtype=np.int64)
        np.testing.assert_array_equal(
            router._key_hashes(obj), router._key_hashes(exact)
        )

    def test_object_float_keys_raise(self):
        router = ConsistentHashRouter([0, 1])
        with pytest.raises(TypeError):
            router.route(np.array([1.5, 2], dtype=object))
