"""Tests for the inference-side LoRA trainer."""

import numpy as np
import pytest

from repro.core.trainer import LoRATrainer, TrainerConfig
from repro.data.stream import InferenceLogBuffer
from repro.data.synthetic import DriftingCTRStream, StreamConfig
from repro.dlrm.model import DLRM, DLRMConfig


@pytest.fixture
def world():
    table_sizes = (100, 80)
    model = DLRM(
        DLRMConfig(
            num_dense=3,
            embedding_dim=8,
            table_sizes=table_sizes,
            bottom_mlp=(8,),
            top_mlp=(8,),
            seed=0,
        )
    )
    stream = DriftingCTRStream(
        StreamConfig(table_sizes=table_sizes, num_dense=3, seed=1)
    )
    buffer = InferenceLogBuffer(retention_s=600)
    return model, stream, buffer


def _fill(buffer, stream, batches=4, n=64):
    for _ in range(batches):
        buffer.append(stream.next_batch(n, local=True))


class TestTraining:
    def test_empty_buffer_returns_none(self, world):
        model, _, buffer = world
        trainer = LoRATrainer(model, buffer)
        assert trainer.train_step() is None

    def test_train_step_returns_loss_and_counts(self, world):
        model, stream, buffer = world
        _fill(buffer, stream)
        trainer = LoRATrainer(model, buffer, TrainerConfig(batch_size=32))
        loss = trainer.train_step()
        assert loss > 0
        assert trainer.report.steps == 1
        assert trainer.report.samples_seen == 32
        assert trainer.report.rows_updated > 0

    def test_base_weights_frozen(self, world):
        model, stream, buffer = world
        _fill(buffer, stream)
        trainer = LoRATrainer(model, buffer, TrainerConfig(batch_size=32))
        emb_before = model.embeddings[0].weight.copy()
        dense_before = model.bottom.weights[0].copy()
        for _ in range(5):
            trainer.train_step()
        np.testing.assert_array_equal(emb_before, model.embeddings[0].weight)
        np.testing.assert_array_equal(dense_before, model.bottom.weights[0])

    def test_training_reduces_loss(self, world):
        model, stream, buffer = world
        _fill(buffer, stream, batches=6, n=128)
        trainer = LoRATrainer(
            model,
            buffer,
            TrainerConfig(
                batch_size=128,
                lr=0.3,
                capacity_fraction=1.0,
                dynamic_prune=False,
            ),
        )
        losses = [trainer.train_step() for _ in range(80)]
        assert np.mean(losses[-20:]) < np.mean(losses[:20])

    def test_hot_filter_marks_trained_ids(self, world):
        model, stream, buffer = world
        _fill(buffer, stream)
        trainer = LoRATrainer(model, buffer, TrainerConfig(batch_size=32))
        trainer.train_step()
        assert trainer.hot_filter.hot_count(0) > 0

    def test_overlay_changes_predictions_after_training(self, world):
        model, stream, buffer = world
        _fill(buffer, stream)
        trainer = LoRATrainer(
            model, buffer, TrainerConfig(batch_size=64, lr=0.3)
        )
        for _ in range(10):
            trainer.train_step()
        ev = stream.eval_batch(64)
        base = model.predict(ev.dense, ev.sparse_ids)
        adapted = model.predict(ev.dense, ev.sparse_ids, overlay=trainer.overlay())
        assert not np.allclose(base, adapted)


class TestAdaptation:
    def test_dynamic_rank_grows_not_shrinks_live(self, world):
        model, stream, buffer = world
        _fill(buffer, stream, batches=8, n=128)
        trainer = LoRATrainer(
            model,
            buffer,
            TrainerConfig(
                rank=2, batch_size=64, adapt_interval=4, dynamic_prune=False
            ),
        )
        for _ in range(20):
            trainer.train_step()
        assert all(r >= 2 for r in trainer.report.current_ranks)

    def test_pending_shrink_applied_at_reset(self, world):
        model, stream, buffer = world
        _fill(buffer, stream, batches=8, n=128)
        trainer = LoRATrainer(
            model,
            buffer,
            TrainerConfig(
                rank=8,
                batch_size=64,
                adapt_interval=4,
                dynamic_prune=False,
                min_rank=2,
            ),
        )
        for _ in range(16):
            trainer.train_step()
        pending = dict(trainer._pending_shrink)
        trainer.merge_and_reset()
        for f, target in pending.items():
            assert trainer.lora[f].rank == target

    def test_pruning_bounds_capacity(self, world):
        model, stream, buffer = world
        _fill(buffer, stream, batches=8, n=128)
        trainer = LoRATrainer(
            model,
            buffer,
            TrainerConfig(rank=4, batch_size=64, adapt_interval=4),
        )
        for _ in range(16):
            trainer.train_step()
        for f, table in enumerate(model.embeddings):
            assert trainer.lora[f].capacity <= table.num_rows

    def test_fixed_config_disables_adaptation(self, world):
        model, stream, buffer = world
        _fill(buffer, stream, batches=8, n=128)
        trainer = LoRATrainer(
            model,
            buffer,
            TrainerConfig(
                rank=4,
                batch_size=64,
                adapt_interval=4,
                dynamic_rank=False,
                dynamic_prune=False,
            ),
        )
        caps = [ad.capacity for ad in trainer.lora]
        for _ in range(16):
            trainer.train_step()
        assert trainer.report.rank_changes == 0
        assert [ad.capacity for ad in trainer.lora] == caps


class TestMerge:
    def test_merge_moves_adapters_into_base(self, world):
        model, stream, buffer = world
        _fill(buffer, stream)
        trainer = LoRATrainer(
            model, buffer, TrainerConfig(batch_size=64, lr=0.3)
        )
        for _ in range(10):
            trainer.train_step()
        ev = stream.eval_batch(64)
        adapted = model.predict(ev.dense, ev.sparse_ids, overlay=trainer.overlay())
        merged_count = trainer.merge_and_reset()
        assert merged_count > 0
        base_after = model.predict(ev.dense, ev.sparse_ids)
        np.testing.assert_allclose(adapted, base_after, atol=1e-9)
        # post-merge overlay is a no-op (adapters reset, filter cleared)
        np.testing.assert_allclose(
            base_after,
            model.predict(ev.dense, ev.sparse_ids, overlay=trainer.overlay()),
        )

    def test_memory_bytes_positive(self, world):
        model, _, buffer = world
        trainer = LoRATrainer(model, buffer)
        assert trainer.memory_bytes() > 0
