"""Tests for CPU topology, power model, and diurnal load trace."""

import numpy as np
import pytest

from repro.hardware.power import CPUPowerModel, DiurnalLoadTrace
from repro.hardware.topology import EPYC_9684X_DUAL, CCD, NodeTopology, Socket

MB = 1024 ** 2


class TestTopology:
    def test_paper_node_shape(self):
        topo = EPYC_9684X_DUAL
        assert topo.num_ccds == 16           # 2 sockets x 8 CCDs
        assert topo.ccds[0].l3_bytes == 96 * MB
        assert topo.total_l3_bytes == 16 * 96 * MB
        assert topo.num_gpus == 4

    def test_ccd_lookup(self):
        topo = EPYC_9684X_DUAL
        assert topo.ccd(3).ccd_id == 3
        with pytest.raises(KeyError):
            topo.ccd(99)

    def test_core_counts(self):
        topo = EPYC_9684X_DUAL
        assert topo.num_cores == 16 * 8
        assert topo.sockets[0].num_cores == 64

    def test_custom_topology(self):
        ccds = tuple(CCD(ccd_id=i, socket_id=0) for i in range(4))
        topo = NodeTopology(sockets=(Socket(0, ccds),))
        assert topo.num_ccds == 4
        assert topo.total_dram_bandwidth_gbps == pytest.approx(460.8)


class TestPowerModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CPUPowerModel(alpha=0.0)
        with pytest.raises(ValueError):
            CPUPowerModel(idle_w=500, peak_w=400)

    def test_idle_and_peak(self):
        m = CPUPowerModel(idle_w=100, peak_w=500)
        assert m.power(0.0) == 100
        assert m.power(1.0) == 500

    def test_monotone(self):
        m = CPUPowerModel()
        powers = [m.power(u) for u in np.linspace(0, 1, 10)]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_sublinear_curve(self):
        """Half the load costs more than half the dynamic power."""
        m = CPUPowerModel(idle_w=0, peak_w=100, alpha=0.55)
        assert m.power(0.5) > 50

    def test_relative_increase_modest_for_trainer(self):
        m = CPUPowerModel()
        inc = m.relative_increase(base_util=0.13, extra_util=0.10)
        assert 0.1 < inc < 0.35  # the paper's ~20% claim


class TestDiurnalTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalLoadTrace(peak_utilization=0.0)

    def test_peak_stays_under_limit(self):
        t = DiurnalLoadTrace(peak_utilization=0.20, noise=0.0)
        util = t.utilization_at(np.linspace(0, 24, 200))
        assert util.max() <= 0.205
        assert util.max() > 0.18  # reaches its peak

    def test_trough_fraction(self):
        t = DiurnalLoadTrace(peak_utilization=0.20, trough_fraction=0.4, noise=0.0)
        util = t.utilization_at(np.linspace(0, 24, 200))
        assert util.min() >= 0.4 * 0.20 * 0.9

    def test_evening_peak_exceeds_morning(self):
        t = DiurnalLoadTrace(noise=0.0)
        assert t.utilization_at(20.5) > t.utilization_at(6.0)

    def test_sample_day_length(self):
        t = DiurnalLoadTrace()
        samples = t.sample_day(interval_s=3600.0)
        assert len(samples) == 24

    def test_extra_utilization_shifts_curve(self):
        t = DiurnalLoadTrace(noise=0.0, seed=1)
        base = t.sample_day(interval_s=3600.0)
        t2 = DiurnalLoadTrace(noise=0.0, seed=1)
        extra = t2.sample_day(interval_s=3600.0, extra_utilization=0.1)
        diffs = [
            e.utilization - b.utilization for e, b in zip(extra, base)
        ]
        assert all(d == pytest.approx(0.1, abs=1e-9) for d in diffs)

    def test_qps_shape_follows_utilization(self):
        t = DiurnalLoadTrace(noise=0.0)
        assert t.qps_at(20.5) > t.qps_at(4.0)
