"""Tests for the HBM/DRAM/remote tiered embedding store."""

import numpy as np
import pytest

from repro.hardware.tiered_store import (
    TieredEmbeddingStore,
    TieredStoreConfig,
    TierStats,
)


@pytest.fixture
def weight():
    return np.arange(100 * 4, dtype=float).reshape(100, 4)


@pytest.fixture
def store(weight):
    return TieredEmbeddingStore(
        weight, TieredStoreConfig(hbm_capacity_rows=10)
    )


class TestLookup:
    def test_returns_correct_rows(self, store, weight):
        rows, _ = store.lookup(np.array([3, 7]))
        np.testing.assert_array_equal(rows[0], weight[3])
        np.testing.assert_array_equal(rows[1], weight[7])

    def test_first_touch_is_dram_then_hbm(self, store):
        store.lookup(np.array([5]))
        assert store.stats.dram_hits == 1
        store.lookup(np.array([5]))
        assert store.stats.hbm_hits == 1

    def test_latency_orders_by_tier(self, store):
        _, cold = store.lookup(np.array([5]))       # DRAM
        _, warm = store.lookup(np.array([5]))       # HBM
        assert warm < cold

    def test_promotion_respects_capacity(self, store):
        for i in range(30):
            store.lookup(np.array([i]))
        assert store.hbm_rows == 10

    def test_promotion_can_be_disabled(self, weight):
        store = TieredEmbeddingStore(
            weight,
            TieredStoreConfig(hbm_capacity_rows=10, promote_on_access=False),
        )
        store.lookup(np.array([5]))
        store.lookup(np.array([5]))
        assert store.stats.hbm_hits == 0
        assert store.stats.dram_hits == 2


class TestPreload:
    def test_preload_pins_hot_rows(self, store):
        admitted = store.preload_hot(np.arange(5))
        assert admitted == 5
        store.lookup(np.array([0, 1]))
        assert store.stats.hbm_hits == 2

    def test_preload_stops_at_capacity(self, store):
        assert store.preload_hot(np.arange(50)) == 10


class TestRemoteTier:
    def test_non_local_ids_fetch_remotely(self, weight):
        calls = []

        def remote(ids):
            calls.append(ids)
            return np.full((len(ids), 4), -1.0)

        store = TieredEmbeddingStore(
            weight,
            local_ids=np.arange(50),
            remote_fetch=remote,
        )
        rows, latency = store.lookup(np.array([10, 80]))
        np.testing.assert_array_equal(rows[0], weight[10])
        np.testing.assert_array_equal(rows[1], np.full(4, -1.0))
        assert store.stats.remote_misses == 1
        assert len(calls) == 1

    def test_remote_latency_dominates(self, weight):
        store = TieredEmbeddingStore(weight, local_ids=np.arange(50))
        _, local_lat = store.lookup(np.array([1]))
        _, remote_lat = store.lookup(np.array([99]))
        assert remote_lat > 10 * local_lat


class TestUpdates:
    def test_apply_update_writes_through(self, store):
        store.lookup(np.array([3]))  # promoted to HBM
        store.apply_update(np.array([3]), np.zeros((1, 4)))
        rows, _ = store.lookup(np.array([3]))
        np.testing.assert_array_equal(rows[0], np.zeros(4))

    def test_apply_update_skips_non_local(self, weight):
        store = TieredEmbeddingStore(weight, local_ids=np.arange(10))
        written = store.apply_update(
            np.array([5, 50]), np.zeros((2, 4))
        )
        assert written == 1


class TestStats:
    def test_ratios(self):
        s = TierStats(hbm_hits=6, dram_hits=3, remote_misses=1)
        assert s.hbm_hit_ratio == pytest.approx(0.6)
        assert s.local_hit_ratio == pytest.approx(0.9)

    def test_empty_ratios(self):
        s = TierStats()
        assert s.hbm_hit_ratio == 0.0
        assert s.local_hit_ratio == 0.0

    def test_mean_latency_tracks_mix(self, store):
        store.lookup(np.array([1]))   # DRAM
        store.lookup(np.array([1]))   # HBM
        mean = store.mean_lookup_latency_us()
        cfg = store.config
        assert mean == pytest.approx(
            (cfg.dram_latency_us + cfg.hbm_latency_us) / 2
        )

    def test_hot_placement_lowers_mean_latency(self, weight):
        """The hierarchy's purpose: hot-in-HBM placement wins."""
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 20, 500)  # hot set of 20 ids
        preloaded = TieredEmbeddingStore(
            weight, TieredStoreConfig(hbm_capacity_rows=20, promote_on_access=False)
        )
        preloaded.preload_hot(np.arange(20))
        cold = TieredEmbeddingStore(
            weight, TieredStoreConfig(hbm_capacity_rows=20, promote_on_access=False)
        )
        preloaded.lookup(ids)
        cold.lookup(ids)
        assert (
            preloaded.mean_lookup_latency_us() < cold.mean_lookup_latency_us()
        )
