"""Tests for the request arrival process."""

import numpy as np
import pytest

from repro.data.arrivals import ArrivalConfig, BurstEpisode, RequestArrivalProcess


class TestBurstEpisode:
    def test_active_window(self):
        b = BurstEpisode(start_s=10.0, duration_s=5.0, multiplier=3.0)
        assert b.active(12.0)
        assert not b.active(9.9)
        assert not b.active(15.0)

    def test_vectorized(self):
        b = BurstEpisode(start_s=10.0, duration_s=5.0, multiplier=3.0)
        mask = b.active(np.array([5.0, 12.0, 20.0]))
        assert mask.tolist() == [False, True, False]


class TestArrivalProcess:
    def test_validation(self):
        p = RequestArrivalProcess()
        with pytest.raises(ValueError):
            p.counts_per_interval(0)
        with pytest.raises(ValueError):
            p.counts_per_interval(10, interval_s=0)

    def test_mean_rate_matches_config(self):
        cfg = ArrivalConfig(
            base_qps=1000.0,
            diurnal_amplitude=0.0,
            burst_rate_per_hour=0.0,
            seed=1,
        )
        counts = RequestArrivalProcess(cfg).counts_per_interval(600.0)
        assert counts.mean() == pytest.approx(1000.0, rel=0.05)

    def test_diurnal_modulation_changes_rate_by_hour(self):
        cfg = ArrivalConfig(
            base_qps=1000.0,
            diurnal_amplitude=0.5,
            burst_rate_per_hour=0.0,
            seed=2,
        )
        p = RequestArrivalProcess(cfg)
        peak = p.counts_per_interval(600.0, start_hour=21.0).mean()
        trough = p.counts_per_interval(600.0, start_hour=9.0).mean()
        assert peak > trough

    def test_bursts_raise_peak_to_mean(self):
        calm_cfg = ArrivalConfig(burst_rate_per_hour=0.0, seed=3)
        bursty_cfg = ArrivalConfig(
            burst_rate_per_hour=30.0, burst_multiplier=5.0, seed=3
        )
        calm = RequestArrivalProcess(calm_cfg).peak_to_mean()
        bursty = RequestArrivalProcess(bursty_cfg).peak_to_mean()
        assert bursty > calm

    def test_batch_sizes_positive(self):
        p = RequestArrivalProcess(ArrivalConfig(base_qps=500.0, seed=4))
        sizes = p.batch_sizes(60.0, batch_window_ms=50.0)
        assert (sizes > 0).all()
        # ~500 qps x 50 ms windows -> ~25 requests per batch
        assert 15 < sizes.mean() < 40

    def test_deterministic_per_seed(self):
        a = RequestArrivalProcess(ArrivalConfig(seed=9)).counts_per_interval(100.0)
        b = RequestArrivalProcess(ArrivalConfig(seed=9)).counts_per_interval(100.0)
        np.testing.assert_array_equal(a, b)
