"""Tests for embedding tables and sparse gradients."""

import numpy as np
import pytest

from repro.dlrm.embedding import (
    EmbeddingBagCollection,
    EmbeddingTable,
    SparseRowGrad,
)


@pytest.fixture
def table():
    return EmbeddingTable(50, 8, rng=np.random.default_rng(0), name="t")


class TestSparseRowGrad:
    def test_shapes_validated(self):
        with pytest.raises(ValueError):
            SparseRowGrad(np.array([[1]]), np.zeros((1, 4)))
        with pytest.raises(ValueError):
            SparseRowGrad(np.array([1, 2]), np.zeros((3, 4)))

    def test_to_dense_roundtrip(self):
        grad = SparseRowGrad(np.array([1, 3]), np.ones((2, 4)))
        dense = grad.to_dense(5)
        assert dense.shape == (5, 4)
        assert dense[1].sum() == 4 and dense[3].sum() == 4
        assert dense[0].sum() == 0 and dense[2].sum() == 0

    def test_nnz_and_norm(self):
        grad = SparseRowGrad(np.array([0, 2]), np.array([[3.0, 4.0], [0.0, 0.0]]))
        assert grad.nnz_rows == 2
        assert grad.frobenius_norm() == pytest.approx(5.0)


class TestEmbeddingTable:
    def test_init_validates(self):
        with pytest.raises(ValueError):
            EmbeddingTable(0, 4)
        with pytest.raises(ValueError):
            EmbeddingTable(4, 0)

    def test_lookup_shape_and_values(self, table):
        rows = table.lookup(np.array([0, 1, 0]))
        assert rows.shape == (3, 8)
        np.testing.assert_array_equal(rows[0], rows[2])

    def test_lookup_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.lookup(np.array([50]))
        with pytest.raises(IndexError):
            table.lookup(np.array([-1]))

    def test_pooled_mean_vs_sum(self, table):
        ids = np.array([1, 2, 3])
        offsets = np.array([0, 3])
        mean = table.lookup_pooled(ids, offsets, mode="mean")
        total = table.lookup_pooled(ids, offsets, mode="sum")
        np.testing.assert_allclose(total[0], 3 * mean[0])

    def test_pooled_empty_bag_is_zero(self, table):
        out = table.lookup_pooled(np.array([], dtype=int), np.array([0, 0]))
        np.testing.assert_array_equal(out, np.zeros((1, 8)))

    def test_grad_from_output_accumulates_duplicates(self, table):
        ids = np.array([5, 5, 7])
        grad_out = np.ones((3, 8))
        grad = table.grad_from_output(ids, grad_out)
        assert set(grad.indices.tolist()) == {5, 7}
        row5 = grad.rows[grad.indices.tolist().index(5)]
        np.testing.assert_allclose(row5, 2 * np.ones(8))

    def test_grad_from_pooled_mean_scaling(self, table):
        ids = np.array([1, 2])
        offsets = np.array([0, 2])
        grad_out = np.ones((1, 8))
        grad = table.grad_from_pooled(ids, offsets, grad_out, mode="mean")
        # each id in a bag of 2 gets grad/2 under mean pooling
        np.testing.assert_allclose(grad.rows, 0.5 * np.ones((2, 8)))

    def test_apply_sparse_update_moves_only_touched(self, table):
        before = table.weight.copy()
        grad = SparseRowGrad(np.array([3]), np.ones((1, 8)))
        table.apply_sparse_update(grad, lr=0.1)
        np.testing.assert_allclose(table.weight[3], before[3] - 0.1)
        untouched = np.delete(np.arange(50), 3)
        np.testing.assert_array_equal(table.weight[untouched], before[untouched])

    def test_touched_tracking(self, table):
        assert table.touched_fraction() == 0.0
        table.apply_sparse_update(
            SparseRowGrad(np.array([1, 2]), np.zeros((2, 8))), lr=0.1
        )
        assert table.touched_fraction() == pytest.approx(2 / 50)
        np.testing.assert_array_equal(table.touched_rows(), [1, 2])
        table.reset_touched()
        assert table.touched_fraction() == 0.0

    def test_assign_rows_marks_touched(self, table):
        table.assign_rows(np.array([4]), np.zeros((1, 8)))
        np.testing.assert_array_equal(table.weight[4], np.zeros(8))
        assert 4 in table.touched_rows()

    def test_copy_is_independent(self, table):
        dup = table.copy()
        dup.weight[0] += 1.0
        assert not np.allclose(dup.weight[0], table.weight[0])
        assert dup.touched_fraction() == 0.0

    def test_nbytes(self, table):
        assert table.nbytes == 50 * 8 * 8


class TestEmbeddingBagCollection:
    def test_lookup_all_field_count_mismatch(self):
        coll = EmbeddingBagCollection(
            [EmbeddingTable(10, 4), EmbeddingTable(10, 4)]
        )
        with pytest.raises(ValueError):
            coll.lookup_all(np.zeros((2, 3), dtype=int))

    def test_lookup_all_shapes(self):
        coll = EmbeddingBagCollection(
            [EmbeddingTable(10, 4), EmbeddingTable(20, 4)]
        )
        out = coll.lookup_all(np.array([[0, 1], [2, 3]]))
        assert len(out) == 2
        assert all(o.shape == (2, 4) for o in out)

    def test_totals_and_touched(self):
        coll = EmbeddingBagCollection(
            [EmbeddingTable(10, 4), EmbeddingTable(30, 4)]
        )
        assert coll.total_rows == 40
        assert coll.nbytes == 40 * 4 * 8
        coll[0].assign_rows(np.array([0]), np.zeros((1, 4)))
        assert coll.touched_fraction() == pytest.approx(1 / 40)
        coll.reset_touched()
        assert coll.touched_fraction() == 0.0
