"""Tests for the batched ShardClient sessions."""

import numpy as np
import pytest

from repro.cluster.network import GBE_100
from repro.cluster.parameter_server import ParameterServer
from repro.cluster.shardstore import ShardClient, ShardedParameterStore


@pytest.fixture
def store():
    return ShardedParameterStore(num_shards=4, row_bytes=32, row_dim=4)


class TestStagedPublish:
    def test_flush_is_one_version_bump(self, store):
        client = ShardClient(store)
        client.stage("a", np.arange(10), np.zeros((10, 4)))
        client.stage("b", np.arange(5), np.ones((5, 4)))
        client.stage("a", np.arange(10, 14), np.ones((4, 4)))
        assert store.version == 0  # nothing hit the store yet
        assert client.staged_rows == 19
        report = client.flush()
        assert store.version == 1
        assert report.version == 1
        assert report.rows == 19
        assert report.bytes == 19 * 32
        assert report.seconds > 0
        assert sorted(report.tables) == ["a", "b"]

    def test_empty_flush_is_free(self, store):
        client = ShardClient(store)
        report = client.flush()
        assert report.rows == 0
        assert report.seconds == 0.0
        assert store.version == 0

    def test_publish_convenience(self, store):
        client = ShardClient(store)
        report = client.publish("t", np.array([1, 2]), np.zeros((2, 4)))
        assert report.rows == 2
        assert store.version == 1
        assert len(client.push_log) == 1

    def test_flush_matches_direct_store_publish(self, store):
        """Client-batched rows land exactly where direct publishes would."""
        other = ShardedParameterStore(num_shards=4, row_bytes=32, row_dim=4)
        rng = np.random.default_rng(3)
        ids = rng.choice(500, size=64, replace=False)
        rows = rng.normal(size=(64, 4))
        ShardClient(store).publish("t", ids, rows)
        other.publish_batch("t", ids, rows)
        for sid in store.shard_ids:
            np.testing.assert_array_equal(
                store.shards[sid].resident_ids("t"),
                other.shards[sid].resident_ids("t"),
            )

    def test_stage_validation(self, store):
        client = ShardClient(store)
        with pytest.raises(ValueError):
            client.stage("t", np.array([0]), np.zeros((2, 4)))


class TestBatchedPull:
    def test_pull_tables_advances_sync_point(self, store):
        producer = ShardClient(store)
        consumer = ShardClient(store)
        producer.publish("a", np.arange(6), np.ones((6, 4)))
        producer.publish("b", np.arange(3), np.ones((3, 4)))
        assert consumer.staleness_versions() == 2
        deltas, report = consumer.pull_tables(["a", "b"])
        assert deltas["a"][0].tolist() == list(range(6))
        assert deltas["b"][0].tolist() == list(range(3))
        assert report.rows == 9
        assert report.seconds > 0
        assert consumer.staleness_versions() == 0
        # a second pull sees nothing new
        deltas, report = consumer.pull_tables(["a", "b"])
        assert report.rows == 0

    def test_row_filter_applies_before_accounting(self, store):
        producer = ShardClient(store)
        consumer = ShardClient(store)
        producer.publish("a", np.arange(10), np.ones((10, 4)))
        deltas, report = consumer.pull_tables(
            ["a"], row_filter=np.array([2, 4])
        )
        assert deltas["a"][0].tolist() == [2, 4]
        assert report.rows == 2
        assert report.bytes == 2 * 32

    def test_pull_table_single(self, store):
        consumer = ShardClient(store)
        ShardClient(store).publish("a", np.array([1]), np.ones((1, 4)))
        ids, rows, report = consumer.pull_table("a")
        assert ids.tolist() == [1]
        np.testing.assert_array_equal(rows, np.ones((1, 4)))
        assert report.rows == 1
        assert len(consumer.pull_log) == 1

    def test_mark_synced_skips_pending_deltas(self, store):
        producer = ShardClient(store)
        consumer = ShardClient(store)
        producer.publish("a", np.arange(4), np.ones((4, 4)))
        consumer.mark_synced()
        _, report = consumer.pull_tables(["a"])
        assert report.rows == 0

    def test_pull_is_o_changed_not_o_world(self, store):
        """Delta pulls read only changed log entries, not the whole table."""
        producer = ShardClient(store)
        consumer = ShardClient(store)
        producer.publish("t", np.arange(2000), np.zeros((2000, 4)))
        consumer.pull_tables(["t"])
        read_before = sum(s.rows_read for s in store.shard_stats)
        producer.publish("t", np.array([7]), np.ones((1, 4)))
        consumer.pull_tables(["t"])
        read_after = sum(s.rows_read for s in store.shard_stats)
        assert read_after - read_before == 1


class TestFacadeInterop:
    def test_client_over_facade_store(self):
        server = ParameterServer(num_shards=4, row_bytes=32, row_dim=4)
        client = ShardClient(server.store, link=GBE_100)
        server.publish_batch("t", np.arange(4), np.ones((4, 4)))
        deltas, report = client.pull_tables(["t"])
        assert deltas["t"][0].tolist() == [0, 1, 2, 3]
        assert report.rows == 4
        assert client.synced_version == server.version
