"""Tests for LoRA adapter tables."""

import numpy as np
import pytest

from repro.core.lora import LoRAAdapter, LoRACollection


@pytest.fixture
def adapter():
    return LoRAAdapter(dim=8, rank=4, capacity=10, rng=np.random.default_rng(0))


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoRAAdapter(dim=0, rank=1, capacity=1)
        with pytest.raises(ValueError):
            LoRAAdapter(dim=4, rank=8, capacity=1)  # rank > dim

    def test_fresh_adapter_is_noop(self, adapter):
        adapter.activate(3)
        delta = adapter.delta_rows(np.array([3]))
        np.testing.assert_array_equal(delta, np.zeros((1, 8)))

    def test_inactive_ids_contribute_zero(self, adapter):
        delta = adapter.delta_rows(np.array([7]))
        np.testing.assert_array_equal(delta, np.zeros((1, 8)))

    def test_apply_to_adds_delta(self, adapter):
        slot = adapter.activate(1)
        adapter.a[slot] = np.ones(4)
        base = np.zeros((1, 8))
        out = adapter.apply_to(np.array([1]), base)
        np.testing.assert_allclose(out[0], adapter.b.sum(axis=0))

    def test_nbytes_tracks_shapes(self, adapter):
        assert adapter.nbytes == adapter.a.nbytes + adapter.b.nbytes


class TestSlots:
    def test_activation_allocates_once(self, adapter):
        s1 = adapter.activate(5)
        s2 = adapter.activate(5)
        assert s1 == s2
        assert adapter.num_active == 1

    def test_capacity_exhaustion_returns_none(self, adapter):
        for i in range(10):
            assert adapter.activate(i) is not None
        assert adapter.activate(99) is None
        assert adapter.num_active == 10

    def test_deactivate_frees_slot(self, adapter):
        adapter.activate(1)
        assert adapter.deactivate(1) is True
        assert adapter.deactivate(1) is False
        assert adapter.num_active == 0
        assert adapter.activate(2) is not None

    def test_deactivate_zeroes_row(self, adapter):
        slot = adapter.activate(1)
        adapter.a[slot] = 7.0
        adapter.deactivate(1)
        slot2 = adapter.activate(3)
        np.testing.assert_array_equal(adapter.a[slot2], np.zeros(4))


class TestGradients:
    def test_accumulate_moves_delta_downhill(self, adapter):
        ids = np.array([0, 1])
        target = np.ones((2, 8))

        def dist():
            return np.linalg.norm(adapter.delta_rows(ids) - target)

        before = dist()
        for _ in range(200):
            g = adapter.delta_rows(ids) - target  # grad of 0.5||delta-target||^2
            adapter.accumulate_grad(ids, g, lr=0.05)
        assert dist() < 0.5 * before

    def test_skips_ids_without_slots(self, adapter):
        for i in range(10):
            adapter.activate(i)
        updated = adapter.accumulate_grad(
            np.array([50]), np.ones((1, 8)), lr=0.1
        )
        assert updated == 0

    def test_returns_update_count(self, adapter):
        n = adapter.accumulate_grad(np.array([1, 2]), np.ones((2, 8)), lr=0.1)
        assert n == 2


class TestRankResize:
    def _train(self, adapter, steps=50):
        ids = np.arange(6)
        rng = np.random.default_rng(1)
        for _ in range(steps):
            adapter.accumulate_grad(ids, rng.normal(size=(6, 8)), lr=0.1)

    def test_grow_preserves_delta(self, adapter):
        self._train(adapter)
        ids = np.arange(6)
        before = adapter.delta_rows(ids)
        adapter.resize_rank(6)
        np.testing.assert_allclose(adapter.delta_rows(ids), before, atol=1e-9)
        assert adapter.rank == 6
        assert adapter.a.shape == (10, 6)

    def test_shrink_is_best_rank_k(self, adapter):
        self._train(adapter)
        ids = np.arange(6)
        before = adapter.delta_rows(ids)
        u, s, vt = np.linalg.svd(before, full_matrices=False)
        best2 = (u[:, :2] * s[:2]) @ vt[:2]
        adapter.resize_rank(2)
        np.testing.assert_allclose(adapter.delta_rows(ids), best2, atol=1e-8)

    def test_invalid_rank(self, adapter):
        with pytest.raises(ValueError):
            adapter.resize_rank(0)
        with pytest.raises(ValueError):
            adapter.resize_rank(9)  # > dim

    def test_shrink_empty_adapter_keeps_learning_alive(self, adapter):
        adapter.resize_rank(2)
        assert np.linalg.norm(adapter.b) > 0  # non-degenerate B
        n = adapter.accumulate_grad(np.array([0]), np.ones((1, 8)), lr=0.1)
        assert n == 1
        assert np.linalg.norm(adapter.delta_rows(np.array([0]))) > 0


class TestCapacityResize:
    def test_grow_preserves_assignments(self, adapter):
        slot = adapter.activate(3)
        adapter.a[slot] = 5.0
        adapter.resize_capacity(20)
        assert adapter.capacity == 20
        new_slot = adapter.slot_of(3)
        np.testing.assert_array_equal(adapter.a[new_slot], np.full(4, 5.0))

    def test_shrink_evicts_smallest_norms(self, adapter):
        for i in range(6):
            slot = adapter.activate(i)
            adapter.a[slot] = float(i)  # id 0 has the smallest norm
        adapter.resize_capacity(3)
        assert adapter.num_active == 3
        assert not adapter.is_active(0)
        assert adapter.is_active(5)

    def test_invalid_capacity(self, adapter):
        with pytest.raises(ValueError):
            adapter.resize_capacity(0)


class TestMerge:
    def test_merge_into_applies_and_resets(self, adapter):
        slot = adapter.activate(2)
        adapter.a[slot] = np.ones(4)
        expected_delta = adapter.a[slot] @ adapter.b
        weight = np.zeros((10, 8))
        merged = adapter.merge_into(weight)
        assert merged == 1
        np.testing.assert_allclose(weight[2], expected_delta)
        assert adapter.num_active == 0

    def test_merge_skips_out_of_range_ids(self, adapter):
        slot = adapter.activate(9)
        adapter.a[slot] = np.ones(4)
        weight = np.zeros((5, 8))  # id 9 out of range
        assert adapter.merge_into(weight) == 0


class TestCollection:
    def test_dims_capacities_must_align(self):
        with pytest.raises(ValueError):
            LoRACollection([8, 8], rank=2, capacities=[4])

    def test_overlay_without_filter_applies_everywhere(self):
        coll = LoRACollection([4], rank=2, capacities=[8], seed=0)
        slot = coll[0].activate(1)
        coll[0].a[slot] = np.ones(2)
        overlay = coll.overlay()
        base = np.zeros((2, 4))
        out = overlay(0, np.array([1, 2]), base)
        assert np.linalg.norm(out[0]) > 0   # active id adjusted
        np.testing.assert_array_equal(out[1], np.zeros(4))  # inactive: zero delta

    def test_overlay_respects_hot_filter(self):
        coll = LoRACollection([4], rank=2, capacities=[8], seed=0)
        slot = coll[0].activate(1)
        coll[0].a[slot] = np.ones(2)

        def cold_filter(field, ids):
            return np.zeros(len(ids), dtype=bool)

        overlay = coll.overlay(hot_filter=cold_filter)
        base = np.zeros((1, 4))
        np.testing.assert_array_equal(overlay(0, np.array([1]), base), base)

    def test_reset_clears_all(self):
        coll = LoRACollection([4, 4], rank=2, capacities=[8, 8], seed=0)
        coll[0].activate(1)
        coll[1].activate(2)
        coll.reset()
        assert coll.num_active == 0
