"""Replication, quorum, repair, and chaos tests for the parameter plane.

The acceptance bar (ISSUE 9): with ``replication=3``, any fault schedule
that kills fewer than a quorum of each row's replicas mid-window loses
zero acknowledged rows; replicas converge byte-identically after repair;
and watermark-guarded compaction never drops a log slice a registered
client still needs.

Chaos seeds are fixed for reproducibility; CI's ``faults`` job extends
the sweep via the ``REPRO_CHAOS_SEED`` environment variable.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from faultlib import (
    assert_converged,
    assert_no_acked_loss,
    quiesce,
    run_chaos_schedule,
)
from repro.cluster.consistency import check_replica_convergence
from repro.cluster.faults import FaultSchedule
from repro.cluster.shardstore import (
    QuorumError,
    ShardPlacement,
    ShardedParameterStore,
)
from repro.cluster.version_manager import ModelVersionManager


def _store(replication=3, num_shards=8, dim=4):
    return ShardedParameterStore(
        num_shards=num_shards,
        row_bytes=None,
        row_dim=dim,
        replication=replication,
    )


def _fill(store, n=2000, seed=0, table="emb", id_space=10_000):
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, id_space, size=n)
    rows = rng.normal(size=(ids.size, store.row_dim))
    version = store.publish_batch(table, ids, rows)
    return ids, rows, version


def _subprocess_output(snippet: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    return subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True, text=True, env=env, check=True,
    ).stdout.strip()


class TestReplicaOwners:
    def test_shape_distinct_and_primary_matches_shard_of(self):
        p = ShardPlacement(list(range(8)))
        ids = np.arange(3000)
        owners = p.replica_owners("t", ids, 3)
        assert owners.shape == (ids.size, 3)
        assert owners.dtype == np.int64
        np.testing.assert_array_equal(owners[:, 0], p.shard_of("t", ids))
        # all three owners distinct per row
        assert (owners[:, 0] != owners[:, 1]).all()
        assert (owners[:, 0] != owners[:, 2]).all()
        assert (owners[:, 1] != owners[:, 2]).all()

    def test_prefix_stability_across_r(self):
        """The r-replica set is a prefix of the (r+1)-replica set."""
        p = ShardPlacement(list(range(8)))
        ids = np.arange(2000)
        three = p.replica_owners("t", ids, 3)
        np.testing.assert_array_equal(
            p.replica_owners("t", ids, 1), three[:, :1]
        )
        np.testing.assert_array_equal(
            p.replica_owners("t", ids, 2), three[:, :2]
        )

    def test_invalid_r_raises(self):
        p = ShardPlacement(list(range(4)))
        with pytest.raises(ValueError):
            p.replica_owners("t", np.arange(5), 0)
        with pytest.raises(ValueError):
            p.replica_owners("t", np.arange(5), 5)

    def test_membership_change_disturbs_few_replica_sets(self):
        """Adding one shard must only remap ~r/(n+1) of replica sets."""
        p8 = ShardPlacement(list(range(8)))
        p9 = p8.with_shard_added(8)
        ids = np.arange(20_000)
        a = p8.replica_owners("t", ids, 3)
        b = p9.replica_owners("t", ids, 3)
        changed = float((a != b).any(axis=1).mean())
        assert changed < 0.55  # ~3/9 expected; consistent hashing bound

    @pytest.mark.parametrize("hash_seed", ["0", "42"])
    def test_replica_owners_identical_across_processes(self, hash_seed):
        """Replica placement is byte-identical under any PYTHONHASHSEED."""
        snippet = (
            "import numpy as np;"
            "from repro.cluster.shardstore import ShardPlacement;"
            "p = ShardPlacement(list(range(8)), virtual_nodes=64, seed=0);"
            "print(p.replica_owners('table_0', np.arange(300), 3).tolist())"
        )
        out = _subprocess_output(snippet, hash_seed)
        here = ShardPlacement(list(range(8)), virtual_nodes=64, seed=0)
        local = here.replica_owners("table_0", np.arange(300), 3).tolist()
        assert out == str(local)


class TestQuorumPublish:
    @pytest.mark.parametrize(
        "r,expected", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3)]
    )
    def test_quorum_size(self, r, expected):
        assert _store(replication=r, num_shards=8).quorum == expected

    def test_replication_bounds_validated(self):
        with pytest.raises(ValueError):
            ShardedParameterStore(num_shards=2, replication=3)
        with pytest.raises(ValueError):
            ShardedParameterStore(num_shards=2, replication=0)

    def test_each_row_stored_r_times(self):
        store = _store()
        ids, _, _ = _fill(store)
        assert len(store) == np.unique(ids).size * 3

    def test_publish_acks_with_minority_down_and_records_missed(self):
        store = _store()
        _fill(store)
        store.kill_shard(2)
        _, _, version = _fill(store, seed=1)
        assert store.missed_versions(2) == [version]
        assert store.replication_lag == 1

    def test_publish_refused_leaves_store_untouched(self):
        store = _store(replication=3, num_shards=4)
        _fill(store, n=500)
        resident_before = len(store)
        version_before = store.version
        # R=3 over 4 shards: each row's owner set excludes exactly one
        # shard, so killing two shards strips at least one (for many rows
        # both) replicas -> some row must miss its quorum of 2.
        store.kill_shard(0)
        store.kill_shard(1)
        with pytest.raises(QuorumError) as err:
            _fill(store, n=500, seed=1)
        assert err.value.needed == 2
        assert store.version == version_before
        assert len(store) == resident_before
        assert store.replication_lag == 0  # refused publish leaves no debt

    def test_publish_many_is_atomic_across_batches(self):
        store = _store(replication=3, num_shards=4)
        store.kill_shard(0)
        store.kill_shard(1)
        rng = np.random.default_rng(0)
        ok_ids = np.arange(5)  # may or may not have quorum on its own
        bad_ids = rng.integers(0, 10_000, size=500)  # surely under-quorum
        with pytest.raises(QuorumError):
            store.publish_many(
                [
                    ("a", ok_ids, rng.normal(size=(5, 4))),
                    ("b", bad_ids, rng.normal(size=(500, 4))),
                ]
            )
        assert store.version == 0
        assert len(store) == 0  # batch "a" was not written either

    def test_armed_drop_consumed_once_and_ledgered(self):
        store = _store()
        store.arm_publish_drop(4)
        _, _, v1 = _fill(store)
        assert store.missed_versions(4) == [v1]
        _, _, v2 = _fill(store, seed=1)
        assert store.missed_versions(4) == [v1]  # drop armed once only
        assert v2 == v1 + 1

    def test_kill_revive_validation(self):
        store = _store()
        with pytest.raises(ValueError):
            store.kill_shard(99)
        store.kill_shard(1)
        with pytest.raises(ValueError):
            store.kill_shard(1)
        with pytest.raises(ValueError):
            store.revive_shard(2)
        store.revive_shard(1)
        assert store.down_shard_ids == []


class TestFailoverReads:
    def test_pull_rows_and_delta_survive_single_kill(self):
        store = _store()
        ids, rows, _ = _fill(store)
        # Oracle: id-sorted last-write-wins world state.
        want_ids, want_rows, _ = store.pull_delta("emb", 0)
        store.kill_shard(5)
        got_ids, got_rows, _ = store.pull_delta("emb", 0)
        np.testing.assert_array_equal(got_ids, want_ids)
        np.testing.assert_array_equal(got_rows, want_rows)
        found, got = store.pull_rows("emb", want_ids)
        assert found.all()
        np.testing.assert_array_equal(got, want_rows)

    def test_stale_revived_replica_never_wins_reads(self):
        store = _store()
        ids = np.arange(500)
        rng = np.random.default_rng(0)
        store.publish_batch("emb", ids, rng.normal(size=(500, 4)))
        store.kill_shard(3)
        fresh = rng.normal(size=(500, 4))
        store.publish_batch("emb", ids, fresh)
        store.revive_shard(3)  # stale: still holds the v1 payloads
        found, got = store.pull_rows("emb", ids)
        assert found.all()
        np.testing.assert_array_equal(got, fresh)
        got_ids, got_rows, _ = store.pull_delta("emb", 0)
        np.testing.assert_array_equal(got_ids, ids)
        np.testing.assert_array_equal(got_rows, fresh)

    def test_reads_during_outage_match_acked_state_under_churn(self):
        store = _store()
        rng = np.random.default_rng(7)
        world: dict[int, np.ndarray] = {}
        for step in range(6):
            ids = rng.integers(0, 800, size=300)
            rows = rng.normal(size=(300, 4))
            store.publish_batch("emb", ids, rows)
            for i, rid in enumerate(ids.tolist()):
                world[rid] = rows[i]
            if step == 2:
                store.kill_shard(1)
            if step == 4:
                store.revive_shard(1)
                store.kill_shard(6)
        want_ids = np.array(sorted(world), dtype=np.int64)
        want_rows = np.stack([world[int(i)] for i in want_ids])
        found, got = store.pull_rows("emb", want_ids)
        assert found.all()
        np.testing.assert_array_equal(got, want_rows)


class TestRepair:
    def test_repair_restores_byte_identical_replicas(self):
        store = _store()
        _fill(store)
        store.kill_shard(2)
        _fill(store, seed=1)
        _fill(store, seed=2)
        store.revive_shard(2)
        report = check_replica_convergence(store)
        assert not report.converged
        plan = store.plan_repair()
        assert plan.stale_shards == [2]
        assert plan.rows_to_copy > 0
        assert plan.bytes_to_copy == plan.rows_to_copy * store.row_bytes
        result = store.repair(plan)
        assert result.rows_copied == plan.rows_to_copy
        assert result.shards_healed == [2]
        assert store.replication_lag == 0
        assert_converged(store)

    def test_repair_skips_still_down_shards(self):
        store = _store()
        _fill(store)
        store.kill_shard(2)
        _, _, version = _fill(store, seed=1)
        report = store.repair()  # shard 2 unreachable: nothing to do yet
        assert report.shards_healed == []
        assert store.missed_versions(2) == [version]
        store.revive_shard(2)
        assert store.repair().shards_healed == [2]
        assert_converged(store)

    def test_repair_without_damage_is_noop(self):
        store = _store()
        _fill(store)
        report = store.repair()
        assert report.rows_copied == 0
        assert report.shards_healed == []
        assert store.plan_repair().is_empty

    def test_healed_replica_serves_delta_log_entries(self):
        """Repaired rows land with log entries, so pulls from the healed
        replica's log serve them at their original versions."""
        store = _store()
        ids, _, _ = _fill(store, n=400)
        store.kill_shard(0)
        _, _, v2 = _fill(store, n=400, seed=1)
        store.revive_shard(0)
        store.repair()
        # every shard's log must now answer a since=v2-1 pull consistently
        want_ids, want_rows, _ = store.pull_delta("emb", v2 - 1)
        store.kill_shard(7)  # force reconciliation through other replicas
        got_ids, got_rows, _ = store.pull_delta("emb", v2 - 1)
        np.testing.assert_array_equal(got_ids, want_ids)
        np.testing.assert_array_equal(got_rows, want_rows)


class TestRebalanceUnderReplication:
    def test_add_shard_migrates_all_copies(self):
        store = _store()
        ids, _, _ = _fill(store)
        report = store.add_shard()
        assert store.num_shards == 9
        assert 0.0 < report.moved_fraction < 0.6
        assert len(store) == np.unique(ids).size * 3  # still exactly R copies
        assert_converged(store)

    def test_remove_shard_migrates_all_copies(self):
        store = _store()
        ids, _, _ = _fill(store)
        store.remove_shard(3)
        assert store.num_shards == 7
        assert len(store) == np.unique(ids).size * 3
        assert_converged(store)
        want = np.unique(ids)
        found, _ = store.pull_rows("emb", want)
        assert found.all()

    def test_remove_shard_refuses_to_break_replication(self):
        store = _store(replication=3, num_shards=3)
        with pytest.raises(ValueError):
            store.remove_shard(0)

    def test_rebalance_refused_while_shards_down(self):
        store = _store()
        store.kill_shard(0)
        with pytest.raises(RuntimeError):
            store.add_shard()

    def test_rebalance_preserves_delta_semantics_under_replication(self):
        store = _store()
        _fill(store)
        v1 = store.version
        _fill(store, seed=1)
        before = store.pull_delta("emb", v1)
        store.add_shard()
        after = store.pull_delta("emb", v1)
        np.testing.assert_array_equal(before[0], after[0])
        np.testing.assert_array_equal(before[1], after[1])


class TestCompactionWatermark:
    def test_registered_client_pins_compaction(self):
        """The store refuses to truncate entries a registered reader needs."""
        from repro.cluster.shardstore import ShardClient

        store = ShardedParameterStore(
            num_shards=4, row_bytes=None, row_dim=2
        )
        rng = np.random.default_rng(0)
        store.publish_batch("t", np.arange(100), rng.normal(size=(100, 2)))
        client = ShardClient(store)
        client.pull_table("t")  # registers sync point at v1
        sync = client.synced_version
        store.publish_batch("t", np.arange(50), rng.normal(size=(50, 2)))
        store.publish_batch(
            "t", np.arange(50, 90), rng.normal(size=(40, 2))
        )
        oracle = store.pull_delta("t", sync)
        store.compact(watermark=store.version)  # clamped to the sync point
        assert store.oldest_sync_point() == sync
        got_ids, got_rows, _ = client.pull_table("t")
        np.testing.assert_array_equal(got_ids, oracle[0])
        np.testing.assert_array_equal(got_rows, oracle[1])

    def test_stale_client_across_compaction_regression(self):
        """A reader below the truncation floor is still answered exactly
        (resident-scan fallback), never with silently missing rows."""
        store = ShardedParameterStore(
            num_shards=4, row_bytes=None, row_dim=2
        )
        rng = np.random.default_rng(0)
        store.publish_batch("t", np.arange(60), rng.normal(size=(60, 2)))
        store.publish_batch(
            "t", np.arange(30, 80), rng.normal(size=(50, 2))
        )
        oracle_from_zero = store.pull_delta("t", 0)
        # no registered readers: an explicit watermark truncates everything
        dropped = store.compact(watermark=store.version)
        assert dropped > 0
        got = store.pull_delta("t", 0)  # below the floor -> fallback path
        np.testing.assert_array_equal(got[0], oracle_from_zero[0])
        np.testing.assert_array_equal(got[1], oracle_from_zero[1])

    def test_client_close_releases_the_pin(self):
        from repro.cluster.shardstore import ShardClient

        store = ShardedParameterStore(
            num_shards=4, row_bytes=None, row_dim=2
        )
        store.publish_batch("t", np.arange(10), np.zeros((10, 2)))
        client = ShardClient(store)
        client.pull_table("t")
        assert store.oldest_sync_point() == store.version
        client.close()
        assert store.oldest_sync_point() is None
        client.close()  # idempotent

    def test_auto_compact_bounds_log_growth(self):
        store = ShardedParameterStore(
            num_shards=4, row_bytes=None, row_dim=2, auto_compact_every=4
        )
        rng = np.random.default_rng(0)
        for _ in range(16):
            store.publish_batch(
                "t", np.arange(200), rng.normal(size=(200, 2))
            )
        log_entries = sum(s.log_entries for s in store.shards.values())
        # 16 publishes x 200 ids would be 3200 entries unbounded; the
        # keep-latest squeeze caps it near the resident count.
        assert log_entries <= 200 * 4

    def test_version_manager_watermark_drives_compaction(self):
        from repro.dlrm.model import DLRM, DLRMConfig

        store = ShardedParameterStore(
            num_shards=4, row_bytes=None, row_dim=2
        )
        rng = np.random.default_rng(0)
        manager = ModelVersionManager(max_versions=2)
        model = DLRM(
            DLRMConfig(
                num_dense=2,
                embedding_dim=2,
                table_sizes=(16, 16),
                bottom_mlp=(4,),
                top_mlp=(4,),
                seed=0,
            )
        )
        marks = []
        for step in range(3):
            store.publish_batch(
                "t", np.arange(100), rng.normal(size=(100, 2))
            )
            record = manager.register(
                model, now=float(step), store_version=store.version
            )
            marks.append(record.store_version)
        # retention window of 2 dropped the first snapshot
        assert manager.compaction_watermark() == marks[1]
        dropped = store.compact(watermark=manager.compaction_watermark())
        assert dropped > 0
        # rollback resync to any retained snapshot still answers exactly
        got = store.pull_delta("t", marks[1])
        assert got[0].size == 100


def _chaos_seeds() -> list[int]:
    seeds = [101, 202, 303]
    extra = os.environ.get("REPRO_CHAOS_SEED")
    if extra is not None:
        seeds = [int(extra)]
    return seeds


class TestChaos:
    """Property suite: randomized-but-seeded kill/revive/drop schedules."""

    @pytest.mark.parametrize("seed", _chaos_seeds())
    def test_no_acked_loss_and_byte_identical_convergence(self, seed):
        store = _store(replication=3, num_shards=8)
        schedule = FaultSchedule.random(
            seed,
            store.shard_ids,
            horizon_s=40.0,
            kills=3,
            drops=3,
            delays=1,
            max_concurrent_down=1,  # below quorum slack for R=3
            outage_s=5.0,
        )
        ledger, plane = run_chaos_schedule(
            store, schedule, seed=seed, windows=40, tables=("emb", "lora")
        )
        assert ledger.acked_publishes > 0
        quiesce(store, plane)
        assert_no_acked_loss(store, ledger)
        assert_converged(store)
        assert store.replication_lag == 0

    @pytest.mark.parametrize("seed", _chaos_seeds()[:1])
    def test_chaos_run_is_deterministic(self, seed):
        def run():
            store = _store(replication=3, num_shards=8)
            schedule = FaultSchedule.random(
                seed, store.shard_ids, kills=2, drops=2,
                max_concurrent_down=1,
            )
            ledger, plane = run_chaos_schedule(
                store, schedule, seed=seed, windows=20,
                check_every_window=False,
            )
            quiesce(store, plane)
            state = {
                sid: store.shards[sid].resident_ids("emb").tolist()
                for sid in store.shard_ids
            }
            return store.version, ledger.acked_publishes, state

        assert run() == run()

    def test_over_quorum_schedule_refuses_not_loses(self):
        """Killing a quorum of replicas makes publishes FAIL — loudly and
        atomically — rather than ack-and-lose."""
        store = _store(replication=3, num_shards=4)
        ids, _, _ = _fill(store, n=300)
        want = store.pull_delta("emb", 0)
        store.kill_shard(0)
        store.kill_shard(1)
        with pytest.raises(QuorumError):
            _fill(store, n=300, seed=1)
        # previously acked state is fully intact and readable
        got = store.pull_delta("emb", 0)
        np.testing.assert_array_equal(got[0], want[0])
        np.testing.assert_array_equal(got[1], want[1])
