"""Tests for TrainingCluster and InferenceNode actors."""

import numpy as np
import pytest

from repro.cluster.nodes import InferenceNode, TrainingCluster
from repro.cluster.parameter_server import ParameterServer
from repro.data.synthetic import DriftingCTRStream, StreamConfig
from repro.dlrm.model import DLRM, DLRMConfig


@pytest.fixture
def world():
    table_sizes = (50, 40)
    model = DLRM(
        DLRMConfig(
            num_dense=3,
            embedding_dim=4,
            table_sizes=table_sizes,
            bottom_mlp=(8,),
            top_mlp=(8,),
            seed=0,
        )
    )
    stream = DriftingCTRStream(
        StreamConfig(table_sizes=table_sizes, num_dense=3, seed=1)
    )
    server = ParameterServer(row_bytes=4 * 8)
    trainer = TrainingCluster(model.copy(), server)
    node = InferenceNode(model.copy(), server)
    return stream, trainer, node


class TestTrainingCluster:
    def test_training_returns_loss(self, world):
        stream, trainer, _ = world
        loss = trainer.train_on(stream.next_batch(16))
        assert loss > 0
        assert trainer.steps_trained == 1

    def test_publish_changed_rows(self, world):
        stream, trainer, _ = world
        trainer.train_on(stream.next_batch(16))
        report = trainer.publish_changed_rows()
        assert report.rows_pushed > 0
        assert report.bytes_pushed == report.rows_pushed * 32
        assert report.transfer_seconds > 0
        # touch log resets after publish
        assert trainer.publish_changed_rows().rows_pushed == 0

    def test_frozen_dense_training(self, world):
        stream, trainer, _ = world
        before = trainer.model.bottom.weights[0].copy()
        trainer.train_on(stream.next_batch(16), update_dense=False)
        np.testing.assert_array_equal(before, trainer.model.bottom.weights[0])


class TestInferenceNode:
    def test_predict_shape(self, world):
        stream, _, node = world
        batch = stream.next_batch(8)
        assert node.predict(batch).shape == (8,)

    def test_pull_applies_published_rows(self, world):
        stream, trainer, node = world
        trainer.train_on(stream.next_batch(32))
        trainer.publish_changed_rows()
        assert node.staleness_versions() > 0
        report = node.pull_updates()
        assert report.rows_pulled > 0
        assert node.staleness_versions() == 0
        # node's pulled rows now match the trainer's
        changed = np.array(
            sorted(
                set(node.model.embeddings[0].touched_rows().tolist())
            )
        )
        if changed.size:
            np.testing.assert_allclose(
                node.model.embeddings[0].weight[changed],
                trainer.model.embeddings[0].weight[changed],
            )

    def test_pull_with_filter(self, world):
        stream, trainer, node = world
        trainer.train_on(stream.next_batch(32))
        trainer.publish_changed_rows()
        report = node.pull_updates(row_filter=np.array([0, 1, 2]))
        assert report.rows_pulled <= 3 * 2  # per table

    def test_pull_nothing_is_cheap(self, world):
        _, _, node = world
        report = node.pull_updates()
        assert report.rows_pulled == 0
        assert report.transfer_seconds == 0.0

    def test_adopt_model_copies_state(self, world):
        stream, trainer, node = world
        for _ in range(5):
            trainer.train_on(stream.next_batch(32))
        node.adopt_model(trainer.model)
        np.testing.assert_allclose(
            node.model.embeddings[0].weight,
            trainer.model.embeddings[0].weight,
        )
        batch = stream.next_batch(8)
        np.testing.assert_allclose(
            node.predict(batch), trainer.model.predict(batch.dense, batch.sparse_ids)
        )

    def test_pull_log_grows(self, world):
        _, _, node = world
        node.pull_updates()
        node.pull_updates()
        assert len(node.pull_log) == 2
