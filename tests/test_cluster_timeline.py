"""Tests for the update-timeline simulator (Fig. 8 machinery)."""

import pytest

from repro.cluster.timeline import (
    UpdateEvent,
    UpdateTimeline,
    simulate_periodic_updates,
)


class TestUpdateEvent:
    def test_duration(self):
        e = UpdateEvent(started_s=10, applied_s=25, version=1, kind="delta")
        assert e.duration_s == 15


class TestTimeline:
    def test_rejects_timetravel(self):
        tl = UpdateTimeline(horizon_s=100)
        with pytest.raises(ValueError):
            tl.add(UpdateEvent(started_s=10, applied_s=5, version=1, kind="x"))

    def test_version_at(self):
        tl = UpdateTimeline(horizon_s=100)
        tl.add(UpdateEvent(10, 20, 1, "delta"))
        tl.add(UpdateEvent(40, 50, 2, "delta"))
        assert tl.version_at(5) == 0
        assert tl.version_at(25) == 1
        assert tl.version_at(60) == 2

    def test_staleness_accounting(self):
        tl = UpdateTimeline(horizon_s=100)
        tl.add(UpdateEvent(10, 20, 1, "delta"))
        # at t=30, serving data as-of t=10 -> 20 s stale
        assert tl.staleness_at(30) == pytest.approx(20)
        # before the update applies, staleness grows from t=0
        assert tl.staleness_at(15) == pytest.approx(15)

    def test_average_staleness_no_updates(self):
        tl = UpdateTimeline(horizon_s=100)
        # staleness ramps 0..100, average ~50
        assert tl.average_staleness(resolution_s=1.0) == pytest.approx(49.5)

    def test_total_update_seconds(self):
        tl = UpdateTimeline(horizon_s=100)
        tl.add(UpdateEvent(0, 10, 1, "delta"))
        tl.add(UpdateEvent(20, 25, 2, "delta"))
        assert tl.total_update_seconds == 15


class TestPeriodicSimulation:
    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_periodic_updates(0, 10, 1, "x")

    def test_fast_updates_land_every_interval(self):
        tl = simulate_periodic_updates(
            3600, interval_s=600, update_duration_s=1.0, kind="lora"
        )
        # six updates start; the last applies just past the horizon
        assert len(tl.events) == 6
        assert tl.updates_delivered == 5

    def test_slow_updates_serialize(self):
        """An update slower than the interval delays its successors."""
        tl = simulate_periodic_updates(
            3600, interval_s=600, update_duration_s=900.0, kind="delta"
        )
        assert tl.updates_delivered < 6
        applied = [e.applied_s for e in tl.events]
        assert all(b - a >= 900.0 for a, b in zip(applied, applied[1:]))

    def test_pipelining_keeps_cadence(self):
        tl = simulate_periodic_updates(
            3600,
            interval_s=600,
            update_duration_s=900.0,
            kind="delta",
            pipeline=True,
        )
        starts = [e.started_s for e in tl.events]
        assert starts == [600 * i for i in range(1, len(starts) + 1)]

    def test_more_frequent_updates_lower_staleness(self):
        slow = simulate_periodic_updates(3600, 1200, 1.0, "x")
        fast = simulate_periodic_updates(3600, 300, 1.0, "x")
        assert fast.average_staleness() < slow.average_staleness()

    def test_faster_transfers_lower_staleness(self):
        heavy = simulate_periodic_updates(3600, 600, 500.0, "delta")
        light = simulate_periodic_updates(3600, 600, 1.0, "lora")
        assert light.average_staleness() < heavy.average_staleness()
