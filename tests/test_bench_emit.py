"""Benchmark result emitter: schema, provenance, and output routing."""

import json
import pathlib

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture
def emit(monkeypatch, tmp_path):
    """The emitter, routed into a per-test output directory."""
    monkeypatch.syspath_prepend(str(BENCH_DIR))
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    from _emit import emit_bench_result

    return emit_bench_result, tmp_path


def test_emits_schema_complete_json(emit):
    emit_bench_result, tmp = emit
    path = emit_bench_result(
        "unit",
        shape="tiny",
        ids_per_sec=123.0,
        speedup=4.5,
        p99_ms=9.9,
        extra={"custom_metric": 1},
    )
    assert path == str(tmp / "BENCH_unit.json")
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["schema_version"] == 1
    for key in ("name", "shape", "ids_per_sec", "speedup", "p99_ms", "git_rev"):
        assert key in payload
    assert payload["name"] == "unit"
    assert payload["ids_per_sec"] == 123.0
    assert payload["speedup"] == 4.5
    assert payload["p99_ms"] == 9.9
    assert payload["custom_metric"] == 1


def test_optional_fields_default_to_null(emit):
    emit_bench_result, _ = emit
    path = emit_bench_result("bare", shape="s", ids_per_sec=1.0)
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["speedup"] is None
    assert payload["p99_ms"] is None


def test_reserved_keys_cannot_be_overridden_by_extra(emit):
    emit_bench_result, _ = emit
    path = emit_bench_result(
        "guarded", shape="s", ids_per_sec=1.0, extra={"name": "hijack"}
    )
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["name"] == "guarded"


def test_git_rev_is_a_short_hash_in_this_checkout(emit):
    emit_bench_result, _ = emit
    path = emit_bench_result("rev", shape="s", ids_per_sec=1.0)
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    rev = payload["git_rev"]
    assert isinstance(rev, str) and rev
    assert rev == "unknown" or all(c in "0123456789abcdef" for c in rev)
