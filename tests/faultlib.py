"""Deterministic chaos-testing helpers for the replicated parameter plane.

The property the replication protocol sells is narrow and checkable:

    While every row keeps a write quorum of live replicas, **no
    acknowledged publish is ever lost**, and after revive + repair all
    replicas are **byte-identical**.

This module provides the machinery the chaos suites assert it with: an
:class:`AckedLedger` that mirrors exactly what the store acknowledged
(refused publishes — :class:`~repro.cluster.shardstore.QuorumError` —
record nothing, like a client whose flush failed), a seeded
:func:`run_chaos_schedule` loop that interleaves fault injection with
publishes, and the two invariant asserts.  Everything is driven by a
single seed: a failing schedule replays bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.faults import FaultPlane, FaultSchedule
from repro.cluster.shardstore import QuorumError, ShardedParameterStore
from repro.cluster.consistency import check_replica_convergence

__all__ = [
    "AckedLedger",
    "run_chaos_schedule",
    "assert_no_acked_loss",
    "assert_converged",
    "quiesce",
]


class AckedLedger:
    """Client-side mirror of every row the store *acknowledged*.

    Mimics the store's write semantics (duplicate ids within one publish
    resolve to the last occurrence), so after any run the ledger holds,
    per table and id, exactly the payload a correct store must serve.
    """

    def __init__(self) -> None:
        self.tables: dict[str, dict[int, np.ndarray]] = {}
        self.acked_publishes = 0
        self.refused_publishes = 0

    def record(self, table: str, ids: np.ndarray, rows: np.ndarray) -> None:
        """Fold one acknowledged publish in (last duplicate wins)."""
        rows_of = self.tables.setdefault(table, {})
        for i, rid in enumerate(ids.tolist()):
            rows_of[int(rid)] = rows[i].copy()
        self.acked_publishes += 1

    def expected(self, table: str) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, rows)`` the store must serve for ``table``, id-sorted."""
        rows_of = self.tables.get(table, {})
        if not rows_of:
            return np.empty(0, dtype=np.int64), np.zeros((0, 1))
        ids = np.array(sorted(rows_of), dtype=np.int64)
        rows = np.stack([rows_of[int(i)] for i in ids])
        return ids, rows


def assert_no_acked_loss(
    store: ShardedParameterStore, ledger: AckedLedger
) -> None:
    """Every acknowledged row must be readable at its acknowledged value.

    Valid at *any* point of a schedule that respects the quorum bound —
    including while shards are down — because reads fail over to the
    freshest live replica.
    """
    for table in ledger.tables:
        want_ids, want_rows = ledger.expected(table)
        if want_ids.size == 0:
            continue
        found, got = store.pull_rows(table, want_ids)
        missing = want_ids[~found]
        assert found.all(), (
            f"{missing.size} acknowledged rows unreadable in {table!r}: "
            f"ids {missing[:10].tolist()}..."
        )
        np.testing.assert_array_equal(
            got,
            want_rows.astype(got.dtype),
            err_msg=f"acknowledged payloads diverged in {table!r}",
        )


def assert_converged(store: ShardedParameterStore) -> None:
    """All live replicas hold byte-identical, correctly versioned copies."""
    report = check_replica_convergence(store)
    assert report.converged, report.summary


def quiesce(store: ShardedParameterStore, plane: FaultPlane) -> None:
    """Drain the schedule, revive everything, repair: the healed end-state
    every chaos run converges to before its final asserts."""
    if plane.schedule.events:
        plane.advance_to(plane.schedule.events[-1].at_s)
    for sid in list(store.down_shard_ids):
        store.revive_shard(sid)
    store.repair()


def run_chaos_schedule(
    store: ShardedParameterStore,
    schedule: FaultSchedule,
    seed: int,
    windows: int = 40,
    window_s: float = 1.0,
    rows_per_window: int = 200,
    id_space: int = 5000,
    tables: tuple[str, ...] = ("emb",),
    dim: int = 4,
    check_every_window: bool = True,
) -> tuple[AckedLedger, FaultPlane]:
    """Interleave seeded publishes with a fault schedule.

    One window = inject everything due, then attempt one multi-table
    publish.  A :class:`QuorumError` records nothing (the store wrote
    nothing) — that is the protocol refusing loudly instead of losing
    quietly.  With ``check_every_window`` the no-acked-loss invariant is
    asserted after *every* window, i.e. also mid-outage.

    Returns the ledger and the fault plane (for post-run quiesce).
    """
    rng = np.random.default_rng(seed)
    plane = FaultPlane(store, schedule)
    ledger = AckedLedger()
    now = 0.0
    for _ in range(windows):
        now += window_s
        plane.advance_to(now)
        batches = []
        for table in tables:
            ids = rng.integers(0, id_space, size=rows_per_window)
            rows = rng.normal(size=(ids.size, dim))
            batches.append((table, ids, rows))
        try:
            store.publish_many(batches)
        except QuorumError:
            ledger.refused_publishes += 1
            continue
        for table, ids, rows in batches:
            ledger.record(table, ids, rows)
        if check_every_window:
            assert_no_acked_loss(store, ledger)
    return ledger, plane
