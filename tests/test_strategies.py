"""Tests for the baseline update strategies."""

import numpy as np
import pytest

from repro.cluster.nodes import InferenceNode, TrainingCluster
from repro.cluster.parameter_server import ParameterServer
from repro.data.synthetic import DriftingCTRStream, StreamConfig
from repro.dlrm.model import DLRM, DLRMConfig
from repro.strategies import DeltaUpdate, NoUpdate, QuickUpdate
from repro.strategies.base import UpdateCost


@pytest.fixture
def world():
    table_sizes = (60, 40)
    model = DLRM(
        DLRMConfig(
            num_dense=3,
            embedding_dim=4,
            table_sizes=table_sizes,
            bottom_mlp=(8,),
            top_mlp=(8,),
            seed=0,
        )
    )
    stream = DriftingCTRStream(
        StreamConfig(table_sizes=table_sizes, num_dense=3, seed=1)
    )
    server = ParameterServer(row_bytes=32)
    trainer = TrainingCluster(model.copy(), server)
    node = InferenceNode(model.copy(), server)
    return stream, trainer, node


class TestUpdateCost:
    def test_addition(self):
        total = UpdateCost("a", 1.0, 10.0, 2) + UpdateCost("a", 2.0, 5.0, 3)
        assert total.seconds == 3.0
        assert total.bytes_moved == 15.0
        assert total.rows == 5

    def test_zero(self):
        z = UpdateCost.zero()
        assert z.seconds == 0 and z.bytes_moved == 0


class TestNoUpdate:
    def test_never_changes_model(self, world):
        stream, trainer, node = world
        strategy = NoUpdate()
        before = node.model.embeddings[0].weight.copy()
        for _ in range(3):
            trainer.train_on(stream.next_batch(32))
            strategy.on_update_window(now=600.0)
        np.testing.assert_array_equal(before, node.model.embeddings[0].weight)
        assert strategy.total_update_seconds == 0.0
        assert strategy.total_bytes_moved == 0.0


class TestDeltaUpdate:
    def test_syncs_all_changed_rows(self, world):
        stream, trainer, node = world
        strategy = DeltaUpdate(trainer, node)
        trainer.train_on(stream.next_batch(64))
        cost = strategy.on_update_window(now=600.0)
        assert cost.rows > 0
        assert cost.bytes_moved > 0
        np.testing.assert_allclose(
            node.model.embeddings[0].weight, trainer.model.embeddings[0].weight
        )

    def test_dense_layers_follow(self, world):
        stream, trainer, node = world
        strategy = DeltaUpdate(trainer, node)
        trainer.train_on(stream.next_batch(64))
        strategy.on_update_window(now=600.0)
        np.testing.assert_allclose(
            node.model.bottom.weights[0], trainer.model.bottom.weights[0]
        )

    def test_cost_log_accumulates(self, world):
        stream, trainer, node = world
        strategy = DeltaUpdate(trainer, node)
        for _ in range(3):
            trainer.train_on(stream.next_batch(32))
            strategy.on_update_window(now=0.0)
        assert len(strategy.cost_log) == 3


class TestQuickUpdate:
    def test_alpha_validated(self, world):
        _, trainer, node = world
        with pytest.raises(ValueError):
            QuickUpdate(trainer, node, alpha=0.0)

    def test_name_reflects_alpha(self, world):
        _, trainer, node = world
        assert QuickUpdate(trainer, node, alpha=0.05).name == "QuickUpdate-5%"

    def test_moves_fewer_rows_than_delta(self, world):
        stream, trainer, node = world
        quick = QuickUpdate(trainer, node, alpha=0.10)
        trainer.train_on(stream.next_batch(64))
        changed_before = sum(
            t.touched_rows().size for t in trainer.model.embeddings
        )
        cost = quick.on_update_window(now=600.0)
        assert 0 < cost.rows < changed_before

    def test_selects_top_magnitude_rows(self, world):
        stream, trainer, node = world
        quick = QuickUpdate(trainer, node, alpha=0.10)
        trainer.train_on(stream.next_batch(128))
        table = trainer.model.embeddings[0]
        served = node.model.embeddings[0].weight
        changed = table.touched_rows()
        deltas = np.linalg.norm(
            table.weight[changed] - served[changed], axis=1
        )
        selected = quick._select_rows(0)
        floor = np.sort(deltas)[-len(selected)]
        sel_mags = np.linalg.norm(
            table.weight[selected] - served[selected], axis=1
        )
        assert sel_mags.min() >= floor - 1e-12

    def test_full_sync_adopts_everything(self, world):
        stream, trainer, node = world
        quick = QuickUpdate(trainer, node, alpha=0.05)
        for _ in range(3):
            trainer.train_on(stream.next_batch(64))
            quick.on_update_window(now=0.0)
        cost = quick.on_full_sync(now=3600.0)
        assert cost.kind == "full-sync"
        np.testing.assert_allclose(
            node.model.embeddings[0].weight, trainer.model.embeddings[0].weight
        )

    def test_unselected_rows_stay_stale(self, world):
        stream, trainer, node = world
        quick = QuickUpdate(trainer, node, alpha=0.05)
        before = node.model.embeddings[0].weight.copy()
        trainer.train_on(stream.next_batch(128))
        quick.on_update_window(now=0.0)
        after = node.model.embeddings[0].weight
        unchanged_rows = np.all(before == after, axis=1).sum()
        assert unchanged_rows > 0.8 * before.shape[0]
