"""Tests for Algorithm 2 (adaptive NUMA partitioning) and embedding reuse."""

import numpy as np
import pytest

from repro.hardware.numa import AdaptiveNumaPartitioner
from repro.hardware.reuse import ShadowEmbeddingBuffer
from repro.hardware.topology import EPYC_9684X_DUAL


@pytest.fixture
def part():
    return AdaptiveNumaPartitioner(
        EPYC_9684X_DUAL,
        t_high_ms=10.0,
        t_low_ms=6.0,
        min_inference_ccds=4,
        max_training_ccds=4,
        initial_training_ccds=2,
    )


class TestPartitioner:
    def test_threshold_order_validated(self):
        with pytest.raises(ValueError):
            AdaptiveNumaPartitioner(EPYC_9684X_DUAL, t_high_ms=5, t_low_ms=6)

    def test_initial_split(self, part):
        assert part.state.num_training == 2
        assert part.state.num_inference == 14

    def test_high_latency_moves_ccd_to_inference(self, part):
        event = part.observe(12.0)
        assert event.action == "to_inference"
        assert part.state.num_training == 1

    def test_low_latency_reclaims_for_training(self, part):
        event = part.observe(4.0)
        assert event.action == "to_training"
        assert part.state.num_training == 3

    def test_mid_latency_holds(self, part):
        event = part.observe(8.0)
        assert event.action == "hold"

    def test_training_cap_respected(self, part):
        for _ in range(10):
            part.observe(4.0)
        assert part.state.num_training == 4  # max_training_ccds

    def test_inference_floor_respected(self):
        part = AdaptiveNumaPartitioner(
            EPYC_9684X_DUAL,
            min_inference_ccds=14,
            max_training_ccds=8,
            initial_training_ccds=2,
        )
        for _ in range(10):
            part.observe(4.0)
        assert part.state.num_inference >= 14

    def test_training_exhaustion_stops_moves(self, part):
        for _ in range(5):
            part.observe(15.0)
        assert part.state.num_training == 0
        event = part.observe(15.0)
        assert event.action == "hold"

    def test_l3_accounting(self, part):
        total = part.l3_bytes("inference") + part.l3_bytes("training")
        assert total == EPYC_9684X_DUAL.total_l3_bytes

    def test_closed_loop_converges_to_sla(self, part):
        """A latency curve decreasing in inference CCDs settles in band."""

        def measure(state):
            return 20.0 - state.num_inference  # 6..20 ms range

        part.run(measure, cycles=12)
        final_p99 = 20.0 - part.state.num_inference
        assert final_p99 < part.t_high_ms

    def test_history_recorded(self, part):
        part.observe(12.0)
        part.observe(4.0)
        assert len(part.history) == 2
        assert part.history[0].cycle == 1


class TestShadowBuffer:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShadowEmbeddingBuffer(0)

    def test_publish_lookup(self):
        buf = ShadowEmbeddingBuffer(10)
        buf.publish(0, np.array([1, 2]), np.arange(8).reshape(2, 4))
        row = buf.lookup(0, 1)
        np.testing.assert_array_equal(row, [0, 1, 2, 3])
        assert buf.lookup(0, 99) is None
        assert buf.stats.reused == 1 and buf.stats.fetched == 1

    def test_capacity_eviction_lru(self):
        buf = ShadowEmbeddingBuffer(2)
        rows = np.zeros((1, 4))
        buf.publish(0, np.array([1]), rows)
        buf.publish(0, np.array([2]), rows)
        buf.publish(0, np.array([3]), rows)  # evicts id 1
        assert buf.lookup(0, 1) is None
        assert buf.lookup(0, 3) is not None

    def test_fields_are_namespaced(self):
        buf = ShadowEmbeddingBuffer(10)
        buf.publish(0, np.array([1]), np.ones((1, 4)))
        assert buf.lookup(1, 1) is None

    def test_gather_mixes_reuse_and_fallback(self):
        buf = ShadowEmbeddingBuffer(10)
        buf.publish(0, np.array([1]), np.full((1, 4), 9.0))
        fallback = np.zeros((2, 4))
        rows, reused = buf.gather(0, np.array([1, 2]), fallback)
        assert reused == 1
        np.testing.assert_array_equal(rows[0], np.full(4, 9.0))
        np.testing.assert_array_equal(rows[1], np.zeros(4))

    def test_gather_does_not_mutate_fallback(self):
        buf = ShadowEmbeddingBuffer(10)
        buf.publish(0, np.array([0]), np.ones((1, 2)))
        fallback = np.zeros((1, 2))
        buf.gather(0, np.array([0]), fallback)
        np.testing.assert_array_equal(fallback, np.zeros((1, 2)))

    def test_reuse_ratio(self):
        buf = ShadowEmbeddingBuffer(10)
        buf.publish(0, np.array([1]), np.ones((1, 2)))
        buf.lookup(0, 1)
        buf.lookup(0, 2)
        assert buf.stats.reuse_ratio == pytest.approx(0.5)
