"""Tests for the drifting CTR stream."""

import numpy as np
import pytest

from repro.data.synthetic import DriftingCTRStream, StreamConfig


@pytest.fixture
def stream():
    return DriftingCTRStream(
        StreamConfig(table_sizes=(200, 100), num_dense=3, seed=0)
    )


class TestBatchGeneration:
    def test_shapes(self, stream):
        b = stream.next_batch(32)
        assert b.dense.shape == (32, 3)
        assert b.sparse_ids.shape == (32, 2)
        assert b.labels.shape == (32,)
        assert set(np.unique(b.labels)).issubset({0.0, 1.0})

    def test_ids_within_vocab(self, stream):
        b = stream.next_batch(500)
        assert b.sparse_ids[:, 0].max() < 200
        assert b.sparse_ids[:, 1].max() < 100

    def test_timestamping(self, stream):
        b1 = stream.next_batch(4, duration_s=10.0)
        b2 = stream.next_batch(4)
        assert b1.timestamp == 0.0
        assert b2.timestamp == 10.0

    def test_eval_batch_does_not_advance(self, stream):
        stream.eval_batch(4)
        assert stream.now == 0.0

    def test_batch_size_property(self, stream):
        assert stream.next_batch(7).size == 7


class TestDrift:
    def test_negative_advance_rejected(self, stream):
        with pytest.raises(ValueError):
            stream.advance(-1.0)

    def test_latents_move(self, stream):
        before = stream._latents[0].copy()
        stream.advance(600.0)
        assert not np.allclose(before, stream._latents[0])

    def test_teacher_logits_change_over_time(self, stream):
        dense = np.zeros((16, 3))
        sids = np.tile(np.arange(16)[:, None], (1, 2)) % 100
        before = stream.teacher_logits(dense, sids)
        stream.advance(1800.0)
        after = stream.teacher_logits(dense, sids)
        assert not np.allclose(before, after)

    def test_trend_injection_fires_on_schedule(self):
        s = DriftingCTRStream(
            StreamConfig(
                table_sizes=(100,), num_dense=2, trend_interval_s=100.0, seed=1
            )
        )
        s.advance(350.0)
        assert len(s.trend_log) == 3 * 1  # 3 events x 1 field

    def test_drift_is_variance_consistent(self):
        """Many small advances ~ one big advance in drift magnitude."""
        cfg = StreamConfig(table_sizes=(500,), num_dense=2, seed=2,
                           mean_reversion=0.0, trend_interval_s=1e9)
        small = DriftingCTRStream(cfg)
        big = DriftingCTRStream(cfg)
        start = small._latents[0].copy()
        for _ in range(100):
            small.advance(10.0)
        big.advance(1000.0)
        d_small = np.linalg.norm(small._latents[0] - start)
        d_big = np.linalg.norm(big._latents[0] - start)
        assert d_small == pytest.approx(d_big, rel=0.2)


class TestLocalContext:
    def test_local_changes_logits(self, stream):
        dense = np.zeros((8, 3))
        sids = np.tile(np.arange(8)[:, None], (1, 2)) % 100
        g = stream.teacher_logits(dense, sids, local=False)
        l = stream.teacher_logits(dense, sids, local=True)
        assert not np.allclose(g, l)

    def test_zero_scale_disables_local(self):
        s = DriftingCTRStream(
            StreamConfig(table_sizes=(50,), num_dense=2, local_context_scale=0.0)
        )
        dense = np.zeros((8, 2))
        sids = np.arange(8)[:, None] % 50
        np.testing.assert_allclose(
            s.teacher_logits(dense, sids, local=False),
            s.teacher_logits(dense, sids, local=True),
        )


class TestUtilities:
    def test_access_counts_shape_and_mass(self, stream):
        counts = stream.access_counts(0, num_samples=10_000)
        assert counts.shape == (200,)
        assert counts.sum() == 10_000

    def test_hot_ids(self, stream):
        hot = stream.hot_ids(0, 0.1)
        assert len(hot) == 20

    def test_determinism_per_seed(self):
        cfg = StreamConfig(table_sizes=(100,), num_dense=2, seed=42)
        b1 = DriftingCTRStream(cfg).next_batch(16)
        b2 = DriftingCTRStream(cfg).next_batch(16)
        np.testing.assert_array_equal(b1.sparse_ids, b2.sparse_ids)
        np.testing.assert_array_equal(b1.labels, b2.labels)
