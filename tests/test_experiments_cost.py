"""Tests for the production-scale cost model (Fig. 14 / Fig. 8)."""

import pytest

from repro.data.datasets import AVAZU_TB, BD_TB
from repro.experiments.update_cost import (
    ProductionCostModel,
    fig8_timelines,
    fig14_grid,
    update_ratio,
)

TB = 1024 ** 4


class TestUpdateRatio:
    def test_paper_anchor_10pct_at_10min(self):
        assert update_ratio(600) == pytest.approx(0.10, abs=0.01)

    def test_monotone_saturating(self):
        r = [update_ratio(w) for w in (300, 600, 1800, 3600, 36_000)]
        assert all(a < b for a, b in zip(r, r[1:]))
        assert r[-1] < 0.36

    def test_zero_window(self):
        assert update_ratio(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            update_ratio(-1)


class TestProductionCostModel:
    @pytest.fixture
    def model(self):
        return ProductionCostModel(spec=AVAZU_TB)

    def test_delta_volume_scales_with_ratio(self, model):
        assert model.delta_volume(600) == pytest.approx(
            update_ratio(600) * 50 * TB, rel=1e-6
        )

    def test_quick_never_exceeds_delta(self, model):
        for w in (60, 300, 600, 1200):
            assert model.quick_volume(w) <= model.delta_volume(w) + 1

    def test_delta_5min_cost_dominates(self, model):
        """DeltaUpdate at 5-minute cadence approaches the full hour."""
        row = model.hourly_cost("DeltaUpdate", 300)
        assert row.total_cost_min > 40

    def test_liveupdate_flat_across_frequencies(self, model):
        costs = [
            model.hourly_cost("LiveUpdate", w).total_cost_s
            for w in (300, 600, 1200)
        ]
        assert max(costs) / min(costs) < 1.05

    def test_liveupdate_beats_quick_at_high_frequency(self, model):
        quick = model.hourly_cost("QuickUpdate", 300).total_cost_s
        live = model.hourly_cost("LiveUpdate", 300).total_cost_s
        assert quick > 1.8 * live  # the paper's ~2x claim

    def test_quick_beats_liveupdate_at_low_frequency(self, model):
        quick = model.hourly_cost("QuickUpdate", 1200).total_cost_s
        live = model.hourly_cost("LiveUpdate", 1200).total_cost_s
        assert quick < live

    def test_noupdate_free(self, model):
        assert model.hourly_cost("NoUpdate", 300).total_cost_s == 0.0

    def test_unknown_method(self, model):
        with pytest.raises(ValueError):
            model.hourly_cost("Nonsense", 300)

    def test_liveupdate_total_in_paper_band(self, model):
        """Paper: 3-5 minutes total at the 5-minute interval."""
        live = model.hourly_cost("LiveUpdate", 300).total_cost_min
        assert 1.5 < live < 6.0


class TestFig14Grid:
    def test_grid_covers_all_cells(self):
        grid = fig14_grid([AVAZU_TB, BD_TB])
        assert set(grid) == {"Avazu-TB", "BD-TB"}
        assert len(grid["Avazu-TB"]) == 3 * 4  # windows x methods

    def test_ordering_at_5min_in_every_dataset(self):
        grid = fig14_grid([AVAZU_TB, BD_TB])
        for rows in grid.values():
            at5 = {r.method: r.total_cost_s for r in rows if r.window_s == 300}
            assert (
                at5["NoUpdate"]
                < at5["LiveUpdate"]
                < at5["QuickUpdate"]
                < at5["DeltaUpdate"]
            )


class TestFig8Timelines:
    @pytest.fixture(scope="class")
    def timelines(self):
        return fig8_timelines(BD_TB)

    def test_liveupdate_delivers_most_updates(self, timelines):
        assert (
            timelines["LiveUpdate"].updates_delivered
            > timelines["QuickUpdate"].updates_delivered
            > timelines["DeltaUpdate"].updates_delivered
        )

    def test_staleness_ordering(self, timelines):
        assert (
            timelines["LiveUpdate"].average_staleness()
            < timelines["QuickUpdate"].average_staleness()
            < timelines["DeltaUpdate"].average_staleness()
        )

    def test_liveupdate_subminute_updates(self, timelines):
        durations = [e.duration_s for e in timelines["LiveUpdate"].events]
        assert max(durations) < 60
