"""Tests for utilization, low-rank, memory, and scalability experiments."""

import pytest

from repro.experiments.accuracy import AccuracyConfig
from repro.experiments.lowrank import collect_gradient_spectra, spread_extremes
from repro.experiments.memory import measure_memory_footprints
from repro.experiments.sync_interval import scalability_curve
from repro.experiments.utilization import power_comparison, simulate_day_profile

SMALL = AccuracyConfig(
    table_sizes=(300, 200), num_dense=3, pretrain_steps=60
)


class TestUtilization:
    def test_fig4_peak_utilization_near_20pct(self):
        profile = simulate_day_profile()
        assert 0.15 < profile.peak_utilization <= 0.21
        assert profile.mean_utilization < profile.peak_utilization

    def test_fig18b_extra_load_raises_mean(self):
        base = simulate_day_profile(0.0)
        busy = simulate_day_profile(0.10)
        assert busy.mean_utilization > base.mean_utilization + 0.09

    def test_fig5_power_increase_near_20pct(self):
        pc = power_comparison()
        assert 0.10 < pc.mean_power_increase < 0.30

    def test_energy_positive(self):
        assert simulate_day_profile().energy_kwh > 0


class TestLowRank:
    @pytest.fixture(scope="class")
    def spectra(self):
        return collect_gradient_spectra(
            SMALL, snapshots=3, steps_per_snapshot=8
        )

    def test_one_spectrum_per_table(self, spectra):
        assert len(spectra) == 2

    def test_few_components_capture_most_variance(self, spectra):
        """The paper's O2: <=6 components reach 80% of the variance."""
        for s in spectra:
            curve = s.mean_curve()
            assert curve[min(5, len(curve) - 1)] >= 0.8

    def test_ranks_recorded_per_snapshot(self, spectra):
        assert all(len(s.ranks_at_alpha) == 3 for s in spectra)
        assert all(r >= 1 for s in spectra for r in s.ranks_at_alpha)

    def test_spread_extremes_ordering(self, spectra):
        lo, hi = spread_extremes(spectra)
        assert lo.rank_spread <= hi.rank_spread


class TestMemoryFootprints:
    @pytest.fixture(scope="class")
    def footprints(self):
        return measure_memory_footprints(SMALL, slots=10)

    def test_three_configurations(self, footprints):
        assert [f.label for f in footprints] == [
            "Fixed Rank",
            "+ Dynamic Rank",
            "+ Pruning",
        ]

    def test_dynamic_rank_saves_majority(self, footprints):
        fixed, dyn, _ = footprints
        assert dyn.savings_vs(fixed) > 0.5  # paper: 80-89%

    def test_pruning_reaches_97pct_total(self, footprints):
        fixed, _, full = footprints
        assert full.savings_vs(fixed) > 0.9  # paper: 97-99%

    def test_final_footprint_small_fraction_of_base(self, footprints):
        _, _, full = footprints
        assert full.fraction_of_base < 0.05  # paper target: ~2%


class TestScalability:
    def test_log_scaling_measured_points(self):
        points = {p.num_nodes: p.sync_seconds for p in scalability_curve()}
        # log2 growth: t(16)/t(2) == 4
        assert points[16] / points[2] == pytest.approx(4.0, rel=0.05)

    def test_projection_under_10_minutes(self):
        points = scalability_curve()
        at48 = next(p for p in points if p.num_nodes == 48)
        assert at48.projected
        assert at48.sync_seconds < 600

    def test_projection_continues_trend(self):
        points = scalability_curve()
        measured = [p for p in points if not p.projected]
        projected = [p for p in points if p.projected]
        assert min(p.sync_seconds for p in projected) >= max(
            p.sync_seconds for p in measured
        ) * 0.9


class TestWindowResultConsumers:
    """The serving-window metrics feed the experiment layer directly."""

    @pytest.fixture(scope="class")
    def windows(self):
        from repro.serving.engine import ColocatedNodeSimulator, NodeSimConfig

        sim = ColocatedNodeSimulator(
            NodeSimConfig(
                num_rows=20_000,
                accesses_per_window=10_000,
                training_ratio=4.0,
                l3_bytes_per_ccd=int(0.025 * 1024 ** 2),
                seed=0,
            )
        )
        return {
            "inference only": sim.run_inference_only(),
            "co-located (naive)": sim.run_colocated_naive(),
        }

    def test_utilization_from_windows(self, windows):
        from repro.experiments.utilization import utilization_from_windows

        summary = utilization_from_windows(list(windows.values()))
        assert summary.windows == 2
        assert 0.0 < summary.mean_memory_utilization <= summary.peak_memory_utilization <= 1.5
        assert summary.worst_p99_ms > 0
        assert summary.total_accesses > 0
        assert summary.headroom == pytest.approx(
            1.0 - summary.mean_memory_utilization
        )

    def test_utilization_from_windows_rejects_empty(self):
        from repro.experiments.utilization import utilization_from_windows

        with pytest.raises(ValueError):
            utilization_from_windows([])

    def test_bandwidth_pressure_rows(self, windows):
        from repro.experiments.memory import bandwidth_pressure

        rows = bandwidth_pressure(windows)
        assert [r.label for r in rows] == list(windows)
        naive = rows[1]
        assert naive.traffic_gbps > rows[0].traffic_gbps
        assert naive.p99_ms > rows[0].p99_ms

    def test_cache_churn_profile(self):
        from repro.experiments.freshness import cache_churn_profile

        points = cache_churn_profile(windows=2)
        assert len(points) == 2
        assert all(p.evictions_per_access > 0 for p in points)
        assert all(0 <= p.inference_hit_ratio <= 1 for p in points)
