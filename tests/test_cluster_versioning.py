"""Tests for the model version manager (gating, promotion, rollback)."""

import numpy as np
import pytest

from repro.cluster.version_manager import ModelVersionManager
from repro.data.synthetic import DriftingCTRStream, StreamConfig
from repro.dlrm.model import DLRM, DLRMConfig
from repro.dlrm.optim import SGD

TABLE_SIZES = (60, 40)


def _model(seed=0):
    return DLRM(
        DLRMConfig(
            num_dense=3,
            embedding_dim=4,
            table_sizes=TABLE_SIZES,
            bottom_mlp=(8,),
            top_mlp=(8,),
            seed=seed,
        )
    )


def _batch(seed=1, n=64):
    stream = DriftingCTRStream(
        StreamConfig(table_sizes=TABLE_SIZES, num_dense=3, seed=seed)
    )
    return stream.next_batch(n)


class TestRegistration:
    def test_versions_increment(self):
        mgr = ModelVersionManager()
        m = _model()
        v1 = mgr.register(m, now=0.0)
        v2 = mgr.register(m, now=10.0)
        assert (v1.version, v2.version) == (1, 2)

    def test_retention_evicts_oldest(self):
        mgr = ModelVersionManager(max_versions=2)
        m = _model()
        for i in range(4):
            mgr.register(m, now=float(i))
        assert mgr.versions == [3, 4]
        with pytest.raises(KeyError):
            mgr.get(1)

    def test_serving_version_never_evicted(self):
        mgr = ModelVersionManager(max_versions=2)
        m = _model()
        v1 = mgr.register(m, now=0.0)
        mgr.promote(v1.version, [m])
        for i in range(4):
            mgr.register(m, now=float(i + 1))
        assert 1 in mgr.versions

    def test_min_retention_validated(self):
        with pytest.raises(ValueError):
            ModelVersionManager(max_versions=1)


class TestGateAndPromotion:
    def test_gate_passes_on_improvement(self):
        mgr = ModelVersionManager(gate_tolerance=0.005)
        m = _model()
        rec = mgr.register(m, now=0.0)
        result = mgr.canary_gate(rec.version, canary_auc=0.71, reference_auc=0.70)
        assert result.passed
        assert result.auc_delta == pytest.approx(0.01)

    def test_gate_blocks_regression(self):
        mgr = ModelVersionManager(gate_tolerance=0.005)
        m = _model()
        rec = mgr.register(m, now=0.0)
        result = mgr.canary_gate(rec.version, canary_auc=0.68, reference_auc=0.70)
        assert not result.passed

    def test_promote_restores_fleet(self):
        mgr = ModelVersionManager()
        source = _model()
        rec = mgr.register(source, now=0.0)
        # fleet then drifts
        fleet = [source.copy(), source.copy()]
        batch = _batch()
        fleet[0].train_step(batch.dense, batch.sparse_ids, batch.labels, SGD(0.5))
        count = mgr.promote(rec.version, fleet)
        assert count == 2
        np.testing.assert_allclose(
            fleet[0].embeddings[0].weight, source.embeddings[0].weight
        )
        assert mgr.serving_version == rec.version

    def test_promote_if_healthy_full_path(self):
        mgr = ModelVersionManager(gate_tolerance=0.05)
        base = _model()
        batch = _batch()
        # candidate: slightly trained (should not regress catastrophically)
        candidate = base.copy()
        candidate.train_step(
            batch.dense, batch.sparse_ids, batch.labels, SGD(0.01)
        )
        rec = mgr.register(candidate, now=0.0)
        fleet = [base.copy(), base.copy()]
        result = mgr.promote_if_healthy(rec.version, fleet, batch)
        assert isinstance(result.passed, bool)
        if result.passed:
            assert mgr.serving_version == rec.version


class TestRollback:
    def test_rollback_to_previous_promoted(self):
        mgr = ModelVersionManager()
        good = _model(seed=0)
        rec_good = mgr.register(good, now=0.0)
        bad = _model(seed=9)
        rec_bad = mgr.register(bad, now=10.0)
        fleet = [good.copy()]
        mgr.promote(rec_good.version, fleet)
        mgr.promote(rec_bad.version, fleet)
        target = mgr.rollback(fleet)
        assert target == rec_good.version
        np.testing.assert_allclose(
            fleet[0].embeddings[0].weight, good.embeddings[0].weight
        )
        assert mgr.get(rec_bad.version).rolled_back

    def test_rollback_requires_history(self):
        mgr = ModelVersionManager()
        with pytest.raises(RuntimeError):
            mgr.rollback([_model()])
        rec = mgr.register(_model(), now=0.0)
        mgr.promote(rec.version, [_model()])
        with pytest.raises(RuntimeError):
            mgr.rollback([_model()])
