"""Property tests: vectorized DLRM hot path == seed per-bag implementations.

The pooled forward, pooled backward, overlay forward and fused row-wise
Adagrad step were rewritten as whole-array segment reductions (PR 5).
These tests pin them to verbatim copies of the seed per-bag/per-id
reference implementations across random bag shapes, empty bags, duplicate
ids and both pooling modes, plus the TouchedRows delta-lane semantics and
the optimizer-state keying fixes.
"""

import gc
import weakref

import numpy as np
import pytest

from repro.core.kernels import TouchedRows, group_rows_sum, pool_rows, segment_pool
from repro.dlrm.embedding import EmbeddingTable, SparseRowGrad
from repro.dlrm.multihot import MultiHotField, PooledFieldLayer
from repro.dlrm.optim import RowwiseAdagrad

TOL = dict(rtol=1e-10, atol=1e-12)


# ------------------------------------------------- seed reference implementations
def ref_lookup_pooled(weight, ids, offsets, mode):
    """Seed EmbeddingTable.lookup_pooled: one Python iteration per bag."""
    batch = offsets.shape[0] - 1
    dim = weight.shape[1]
    out = np.zeros((batch, dim))
    rows = weight[ids] if ids.size else np.zeros((0, dim))
    for b in range(batch):
        lo, hi = offsets[b], offsets[b + 1]
        if hi <= lo:
            continue
        seg = rows[lo:hi]
        out[b] = seg.sum(axis=0)
        if mode == "mean":
            out[b] /= hi - lo
    return out


def ref_grad_from_pooled(dim, ids, offsets, grad_out, mode):
    """Seed EmbeddingTable.grad_from_pooled: per-bag spread + np.add.at."""
    per_id = np.zeros((ids.shape[0], dim))
    batch = offsets.shape[0] - 1
    for b in range(batch):
        lo, hi = offsets[b], offsets[b + 1]
        if hi <= lo:
            continue
        g = grad_out[b]
        if mode == "mean":
            g = g / (hi - lo)
        per_id[lo:hi] = g
    uniq, inverse = np.unique(ids, return_inverse=True)
    rows = np.zeros((uniq.shape[0], dim))
    np.add.at(rows, inverse, per_id)
    return uniq, rows


def ref_overlay_forward(table, field, adapter, mode):
    """Seed PooledFieldLayer.forward_with_overlay: per-bag delta pooling."""
    base = ref_lookup_pooled(table.weight, field.ids, field.offsets, mode)
    deltas = adapter.delta_rows(field.ids)
    pooled_delta = np.zeros_like(base)
    for b in range(field.batch_size):
        lo, hi = field.offsets[b], field.offsets[b + 1]
        if hi <= lo:
            continue
        seg = deltas[lo:hi].sum(axis=0)
        if mode == "mean":
            seg = seg / (hi - lo)
        pooled_delta[b] = seg
    return base + pooled_delta


def ref_adagrad_step(weight, state, indices, rows, lr, eps):
    """Seed RowwiseAdagrad.step_sparse: separate probe/accumulate/scale."""
    g2 = (rows ** 2).mean(axis=1)
    state[indices] += g2
    scale = lr / np.sqrt(state[indices] + eps)
    weight[indices] -= scale[:, None] * rows


def random_bags(rng, num_rows, max_bags=40, max_bag=12, allow_empty=True):
    """Random MultiHotField with empty bags and duplicate ids mixed in."""
    n_bags = int(rng.integers(1, max_bags + 1))
    sizes = rng.integers(0 if allow_empty else 1, max_bag + 1, size=n_bags)
    ids = rng.integers(0, num_rows, size=int(sizes.sum()))
    if ids.size >= 2:  # force at least one duplicate
        ids[-1] = ids[0]
    offsets = np.zeros(n_bags + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return MultiHotField(ids=ids, offsets=offsets)


# ---------------------------------------------------------------- pooled forward
class TestPooledForwardEquivalence:
    @pytest.mark.parametrize("mode", ["mean", "sum"])
    @pytest.mark.parametrize("seed", range(8))
    def test_random_bag_shapes(self, mode, seed):
        rng = np.random.default_rng(seed)
        table = EmbeddingTable(37, 5, rng=rng)
        field = random_bags(rng, table.num_rows)
        got = table.lookup_pooled(field.ids, field.offsets, mode=mode)
        want = ref_lookup_pooled(table.weight, field.ids, field.offsets, mode)
        np.testing.assert_allclose(got, want, **TOL)

    def test_all_bags_empty(self):
        table = EmbeddingTable(10, 4)
        out = table.lookup_pooled(
            np.array([], dtype=np.int64), np.array([0, 0, 0, 0])
        )
        np.testing.assert_array_equal(out, np.zeros((3, 4)))

    def test_single_giant_bag(self):
        rng = np.random.default_rng(3)
        table = EmbeddingTable(50, 6, rng=rng)
        ids = rng.integers(0, 50, size=500)
        offsets = np.array([0, 500])
        np.testing.assert_allclose(
            table.lookup_pooled(ids, offsets, mode="sum"),
            ref_lookup_pooled(table.weight, ids, offsets, "sum"),
            **TOL,
        )

    def test_out_of_range_rejected(self):
        table = EmbeddingTable(10, 4)
        with pytest.raises(IndexError):
            table.lookup_pooled(np.array([10]), np.array([0, 1]))
        with pytest.raises(IndexError):
            table.lookup_pooled(np.array([-1]), np.array([0, 1]))


# --------------------------------------------------------------- pooled backward
class TestPooledBackwardEquivalence:
    @pytest.mark.parametrize("mode", ["mean", "sum"])
    @pytest.mark.parametrize("seed", range(8))
    def test_random_bag_shapes(self, mode, seed):
        rng = np.random.default_rng(100 + seed)
        table = EmbeddingTable(29, 4, rng=rng)
        field = random_bags(rng, table.num_rows)
        grad_out = rng.normal(size=(field.batch_size, table.dim))
        got = table.grad_from_pooled(
            field.ids, field.offsets, grad_out, mode=mode
        )
        want_ids, want_rows = ref_grad_from_pooled(
            table.dim, field.ids, field.offsets, grad_out, mode
        )
        np.testing.assert_array_equal(got.indices, want_ids)
        np.testing.assert_allclose(got.rows, want_rows, **TOL)

    def test_heavy_duplicates(self):
        rng = np.random.default_rng(7)
        table = EmbeddingTable(5, 3, rng=rng)
        ids = rng.integers(0, 5, size=200)  # every id massively duplicated
        offsets = np.arange(0, 201, 10, dtype=np.int64)
        grad_out = rng.normal(size=(20, 3))
        got = table.grad_from_pooled(ids, offsets, grad_out, mode="mean")
        want_ids, want_rows = ref_grad_from_pooled(
            3, ids, offsets, grad_out, "mean"
        )
        np.testing.assert_array_equal(got.indices, want_ids)
        np.testing.assert_allclose(got.rows, want_rows, **TOL)

    def test_grad_from_output_matches_add_at(self):
        rng = np.random.default_rng(11)
        table = EmbeddingTable(31, 4, rng=rng)
        ids = rng.integers(0, 31, size=64)
        grad_out = rng.normal(size=(64, 4))
        got = table.grad_from_output(ids, grad_out)
        uniq, inverse = np.unique(ids, return_inverse=True)
        want = np.zeros((uniq.shape[0], 4))
        np.add.at(want, inverse, grad_out)
        np.testing.assert_array_equal(got.indices, uniq)
        np.testing.assert_allclose(got.rows, want, **TOL)

    def test_mismatched_offsets_rejected(self):
        table = EmbeddingTable(10, 4)
        with pytest.raises(ValueError):
            table.grad_from_pooled(
                np.array([1, 2, 3]), np.array([0, 2]), np.ones((1, 4))
            )


# --------------------------------------------------------------- overlay forward
class TestOverlayForwardEquivalence:
    @pytest.mark.parametrize("mode", ["mean", "sum"])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_seed_loop(self, mode, seed):
        from repro.core.lora import LoRAAdapter

        rng = np.random.default_rng(200 + seed)
        table = EmbeddingTable(23, 4, rng=rng)
        adapter = LoRAAdapter(4, 2, capacity=8, rng=rng, universe=23)
        adapter.activate_batch(np.array([1, 3, 5, 7, 11]))
        adapter.a[:] = rng.normal(size=adapter.a.shape)
        field = random_bags(rng, table.num_rows)
        layer = PooledFieldLayer(table, mode=mode)
        got = layer.forward_with_overlay(field, adapter)
        want = ref_overlay_forward(table, field, adapter, mode)
        np.testing.assert_allclose(got, want, **TOL)


# ------------------------------------------------------------------ fused Adagrad
class TestFusedAdagradEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_seed_update_sequence(self, seed):
        rng = np.random.default_rng(300 + seed)
        table = EmbeddingTable(41, 4, rng=rng)
        ref_weight = table.weight.copy()
        ref_state = np.zeros(table.num_rows)
        opt = RowwiseAdagrad(lr=0.3)
        for _ in range(5):
            uniq = np.unique(rng.integers(0, 41, size=12))
            rows = rng.normal(size=(uniq.size, 4))
            grad = SparseRowGrad(uniq, rows)
            opt.step_sparse(table, grad)
            ref_adagrad_step(ref_weight, ref_state, uniq, rows, 0.3, opt.eps)
        np.testing.assert_allclose(table.weight, ref_weight, **TOL)
        np.testing.assert_allclose(
            opt._row_state[table], ref_state, **TOL
        )

    def test_state_survives_table_growth(self):
        table = EmbeddingTable(10, 4)
        opt = RowwiseAdagrad(lr=1.0)
        opt.step_sparse(table, SparseRowGrad(np.array([2]), np.ones((1, 4))))
        acc_before = opt._row_state[table][2]
        assert acc_before > 0
        # grow the vocabulary in place (id-mapper expansion); the touched
        # lane must follow the weight matrix without manual resizing
        table.weight = np.vstack([table.weight, np.zeros((5, 4))])
        opt.step_sparse(table, SparseRowGrad(np.array([12]), np.ones((1, 4))))
        state = opt._row_state[table]
        assert state.shape[0] == 15
        assert state[2] == pytest.approx(acc_before)  # history kept, not zeroed
        assert 12 in table.touched_rows()

    def test_collected_table_drops_state(self):
        opt = RowwiseAdagrad(lr=1.0)
        table = EmbeddingTable(10, 4)
        opt.step_sparse(table, SparseRowGrad(np.array([1]), np.ones((1, 4))))
        assert len(opt._row_state) == 1
        ref = weakref.ref(table)
        del table
        gc.collect()
        assert ref() is None
        assert len(opt._row_state) == 0  # no id-aliasing hazard left behind

    def test_copy_starts_with_fresh_state(self):
        opt = RowwiseAdagrad(lr=1.0)
        table = EmbeddingTable(10, 4)
        opt.step_sparse(table, SparseRowGrad(np.array([1]), np.ones((1, 4))))
        dup = table.copy()
        w_before = dup.weight[1].copy()
        opt.step_sparse(dup, SparseRowGrad(np.array([1]), np.ones((1, 4))))
        # first step on the copy is full-size: no inherited accumulator
        assert np.abs(dup.weight[1] - w_before).mean() == pytest.approx(
            1.0, rel=0.01
        )


# -------------------------------------------------------------------- TouchedRows
class TestTouchedRows:
    def test_stamp_drain_roundtrip(self):
        t = TouchedRows(100)
        t.stamp(np.array([7, 3, 7, 99, 0]))
        np.testing.assert_array_equal(t.ids(), [0, 3, 7, 99])
        assert t.count() == 4
        assert t.fraction() == pytest.approx(4 / 100)
        drained = t.drain()
        np.testing.assert_array_equal(drained, [0, 3, 7, 99])
        assert t.count() == 0

    def test_epoch_wrap_is_clean(self):
        t = TouchedRows(8)
        for _ in range(600):  # far past the 8-bit epoch space
            t.stamp(np.array([1]))
            assert t.count() == 1
            t.clear()
            assert t.count() == 0

    def test_bitmap_export(self):
        t = TouchedRows(16)
        t.stamp(np.array([0, 3, 8]))
        bitmap = t.bitmap()
        assert bitmap.dtype == np.uint8
        assert bitmap[0] == 0b00001001
        assert bitmap[1] == 0b00000001

    def test_resize_grows_and_keeps_stamps(self):
        t = TouchedRows(4)
        t.stamp(np.array([2]))
        t.resize(10)
        np.testing.assert_array_equal(t.ids(), [2])
        t.stamp(np.array([9]))
        np.testing.assert_array_equal(t.ids(), [2, 9])
        with pytest.raises(ValueError):
            t.resize(3)

    def test_memory_overhead_within_budget(self):
        # the paper's <2% metadata budget at the repo's default dim=16
        table = EmbeddingTable(1000, 16)
        assert table._touched.nbytes / table.nbytes < 0.02

    def test_validates_num_rows(self):
        with pytest.raises(ValueError):
            TouchedRows(0)


# ------------------------------------------------------------------- kernel edges
class TestSegmentKernelEdges:
    def test_pool_rows_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            pool_rows(np.ones((2, 2)), np.array([0]), np.array([0, 1]), "max")

    def test_segment_pool_empty_values(self):
        out = segment_pool(np.zeros((0, 3)), np.array([0, 0, 0]))
        np.testing.assert_array_equal(out, np.zeros((2, 3)))

    def test_group_rows_sum_empty(self):
        uniq, rows = group_rows_sum(
            np.array([], dtype=np.int64), np.zeros((0, 4))
        )
        assert uniq.size == 0 and rows.shape == (0, 4)

    def test_group_rows_sum_sorted_vs_unsorted_lane(self):
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 1000, size=64)
        rows = rng.normal(size=(64, 3))
        # dense-universe lane vs sort lane must agree
        u1, r1 = group_rows_sum(ids, rows, num_rows=1000)
        u2, r2 = group_rows_sum(ids, rows, num_rows=None)
        np.testing.assert_array_equal(u1, u2)
        np.testing.assert_allclose(r1, r2, **TOL)
