"""Tests for checkpointing and drift measurement."""

import numpy as np
import pytest

from repro.dlrm.checkpoint import Checkpoint, embedding_drift, model_drift
from repro.dlrm.model import DLRM, DLRMConfig
from repro.dlrm.optim import SGD


@pytest.fixture
def model():
    return DLRM(
        DLRMConfig(
            num_dense=2,
            embedding_dim=4,
            table_sizes=(10, 10),
            bottom_mlp=(4,),
            top_mlp=(4,),
            seed=0,
        )
    )


def _train_a_bit(model, seed=1):
    rng = np.random.default_rng(seed)
    model.train_step(
        rng.normal(size=(8, 2)),
        rng.integers(0, 10, size=(8, 2)),
        rng.integers(0, 2, size=8).astype(float),
        SGD(lr=0.5),
    )


class TestCheckpoint:
    def test_capture_restore(self, model):
        ckpt = Checkpoint.capture(model, version=3)
        _train_a_bit(model)
        ckpt.restore(model)
        np.testing.assert_allclose(
            model.embeddings[0].weight, ckpt.state["embeddings.0.weight"]
        )
        assert ckpt.version == 3

    def test_bytes_roundtrip(self, model):
        ckpt = Checkpoint.capture(model, version=7)
        blob = ckpt.to_bytes()
        back = Checkpoint.from_bytes(blob)
        assert back.version == 7
        for key in ckpt.state:
            np.testing.assert_array_equal(back.state[key], ckpt.state[key])

    def test_nbytes_positive(self, model):
        assert Checkpoint.capture(model, 0).nbytes > 0

    def test_capture_is_snapshot(self, model):
        ckpt = Checkpoint.capture(model, 0)
        _train_a_bit(model)
        assert not np.allclose(
            ckpt.state["embeddings.0.weight"], model.embeddings[0].weight
        )


class TestDrift:
    def test_identical_models_zero_drift(self, model):
        assert embedding_drift(model, model.copy()) == pytest.approx(0.0)
        d = model_drift(model, model.copy())
        assert d["embedding_row_l2"] == pytest.approx(0.0)
        assert d["dense_l2"] == pytest.approx(0.0)

    def test_training_creates_drift(self, model):
        dup = model.copy()
        _train_a_bit(dup)
        assert embedding_drift(model, dup) > 0
        assert model_drift(model, dup)["dense_l2"] > 0

    def test_mismatched_shapes_raise(self, model):
        other = DLRM(
            DLRMConfig(
                num_dense=2,
                embedding_dim=4,
                table_sizes=(12, 10),
                bottom_mlp=(4,),
                top_mlp=(4,),
            )
        )
        with pytest.raises(ValueError):
            embedding_drift(model, other)
