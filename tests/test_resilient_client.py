"""Integration tests for the resilient read/sync path of ``ShardClient``.

Exercises the whole client plane against a live store: exactness parity
with the legacy pull path, hedged reads under a slow replica, breaker
lifecycle across pulls, degraded serving with its staleness bound under
full coverage loss, retry-until-heal flows driven by a fault plane, and
the idempotent flush-retry guarantee (no acked publish lost or
double-applied).  The facade-level typed errors ride along.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.faults import FaultEvent, FaultPlane, FaultSchedule
from repro.cluster.parameter_server import ParameterServer, PublishRefusedError
from repro.cluster.resilience import (
    DegradedReadError,
    HedgedRead,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.cluster.shardstore import (
    QuorumError,
    ShardClient,
    ShardedParameterStore,
)

DIM = 4


def make_store(num_shards=4, replication=3, dim=DIM):
    return ShardedParameterStore(
        num_shards=num_shards,
        row_bytes=dim * 8,
        row_dim=dim,
        replication=replication,
    )


def as_map(ids: np.ndarray, rows: np.ndarray) -> dict[int, tuple]:
    return {int(i): tuple(r) for i, r in zip(ids, rows)}


class TestExactnessParity:
    def test_healthy_pull_matches_legacy_path(self):
        store = make_store(num_shards=8, replication=2)
        legacy = ShardClient(store)
        resilient = ShardClient(store, resilience=ResiliencePolicy())
        rng = np.random.default_rng(5)
        store.publish_batch("emb", np.arange(100), rng.normal(size=(100, DIM)))
        store.publish_batch(
            "emb", np.arange(40, 60), rng.normal(size=(20, DIM))
        )
        got_legacy, rep_legacy = legacy.pull_tables(["emb"])
        got_res, rep_res = resilient.pull_tables(["emb"])
        assert as_map(*got_res["emb"]) == as_map(*got_legacy["emb"])
        assert rep_res.rows == rep_legacy.rows == 100
        assert rep_res.outcome == "ok" and not rep_res.degraded
        assert resilient.synced_version == legacy.synced_version == 2

    def test_row_filter_parity(self):
        store = make_store(num_shards=8, replication=2)
        legacy = ShardClient(store)
        resilient = ShardClient(store, resilience=ResiliencePolicy())
        store.publish_batch("emb", np.arange(50), np.ones((50, DIM)))
        keep = np.array([3, 7, 11, 48])
        got_legacy, _ = legacy.pull_tables(["emb"], row_filter=keep)
        got_res, _ = resilient.pull_tables(["emb"], row_filter=keep)
        assert as_map(*got_res["emb"]) == as_map(*got_legacy["emb"])
        assert got_res["emb"][0].size == keep.size

    def test_one_dead_replica_stays_exact(self):
        store = make_store(num_shards=4, replication=3)
        client = ShardClient(store, resilience=ResiliencePolicy())
        rng = np.random.default_rng(11)
        values = rng.normal(size=(64, DIM))
        store.publish_batch("emb", np.arange(64), values)
        store.kill_shard(store.shard_ids[0])
        deltas, report = client.pull_tables(["emb"])
        assert not report.degraded
        assert report.rows == 64
        got = as_map(*deltas["emb"])
        want = as_map(np.arange(64), values)
        assert got == want
        assert client.synced_version == store.version


class TestHedgedReads:
    def _run(self, hedge=None, *, slow_factor=20.0, trials=16, warmup=12):
        """Publish-then-pull loop with one replica turning slow mid-run."""
        rng = np.random.default_rng(23)
        store = make_store(num_shards=8, replication=3)
        store.publish_batch(
            "emb", np.arange(4096), rng.normal(size=(4096, DIM))
        )
        victim = int(store.shard_ids[0])
        plane = FaultPlane(
            store,
            FaultSchedule(
                [FaultEvent(1.0, "slow_node", shard_id=victim, factor=slow_factor)]
            ),
        )
        policy = (
            ResiliencePolicy()
            if hedge is None
            else ResiliencePolicy(hedge=hedge)
        )
        client = ShardClient(store, faults=plane, resilience=policy)
        healthy, slowed = [], []
        hedges = 0
        for trial in range(warmup + trials):
            if trial == warmup:
                plane.advance_to(1.0)
            hot = rng.choice(4096, size=64, replace=False)
            store.publish_batch("emb", hot, rng.normal(size=(64, DIM)))
            _, report = client.pull_tables(["emb"])
            assert not report.degraded
            if trial >= warmup:
                slowed.append(report.seconds)
                hedges += report.hedges
            else:
                healthy.append(report.seconds)
        return max(healthy[1:]), max(slowed), hedges

    def test_hedging_bounds_the_slow_replica_tail(self):
        baseline, hedged, hedges = self._run()
        assert hedges > 0
        # hedge fires at ~p95 of healthy latency, backup costs ~one more
        # healthy RPC: well under the 20x the straggler would impose
        # (the CI bench gates the 3x p99 claim at full scale).
        assert hedged <= 4.0 * baseline
        _, unhedged, no_hedges = self._run(hedge=HedgedRead(min_delay_s=1e9))
        assert no_hedges == 0
        assert unhedged >= 10.0 * baseline
        assert hedged < unhedged / 2.0

    def test_hedged_pulls_stay_exact(self):
        rng = np.random.default_rng(3)
        store = make_store(num_shards=8, replication=3)
        store.publish_batch(
            "emb", np.arange(512), rng.normal(size=(512, DIM))
        )
        victim = int(store.shard_ids[0])
        plane = FaultPlane(
            store,
            FaultSchedule(
                [FaultEvent(0.0, "slow_node", shard_id=victim, factor=30.0)]
            ),
        )
        plane.advance_to(0.0)
        client = ShardClient(store, faults=plane, resilience=ResiliencePolicy())
        client.pull_tables(["emb"])  # warm the hedge quantile
        values = rng.normal(size=(512, DIM))
        store.publish_batch("emb", np.arange(512), values)
        deltas, report = client.pull_tables(["emb"])
        assert report.hedges > 0 and report.outcome == "hedged"
        assert as_map(*deltas["emb"]) == as_map(np.arange(512), values)


class TestBreakerLifecycle:
    def _partition_scenario(self):
        store = make_store(num_shards=4, replication=3)
        store.publish_batch("emb", np.arange(32), np.ones((32, DIM)))
        victim = int(store.shard_ids[0])
        plane = FaultPlane(
            store,
            FaultSchedule(
                [FaultEvent(0.0, "partition", shard_id=victim, duration_s=1e4)]
            ),
        )
        plane.advance_to(0.0)
        policy = ResiliencePolicy()
        client = ShardClient(store, faults=plane, resilience=policy)
        for _ in range(4):
            _, report = client.pull_tables(["emb"])
            assert not report.degraded  # failover keeps the pull exact
        return victim, policy

    def test_repeated_partition_failures_trip_the_breaker(self):
        victim, policy = self._partition_scenario()
        now = policy.clock.now()
        assert policy.breaker_for(victim).state(now) == "open"
        assert policy.open_breakers(now) == 1
        kinds = [
            (sid, frm, to)
            for sid, _, frm, to in policy.breaker_transitions()
        ]
        assert (victim, "closed", "open") in kinds

    def test_breaker_transition_log_replays_identically(self):
        _, a = self._partition_scenario()
        _, b = self._partition_scenario()
        assert a.breaker_transitions() == b.breaker_transitions()
        assert a.breaker_transitions()  # non-trivial log


class TestDegradedServing:
    def _coverage_loss(self, degraded=True):
        """Doctest scenario: sync v1, lose coverage, publish v2 unseen."""
        store = make_store(num_shards=4, replication=3)
        policy = (
            ResiliencePolicy(deadline_s=2.0)
            if degraded
            else ResiliencePolicy(deadline_s=2.0, degraded=None)
        )
        client = ShardClient(store, resilience=policy)
        store.publish_batch("emb", np.arange(6), np.full((6, DIM), 1.0))
        _, report = client.pull_tables(["emb"])
        assert report.outcome == "ok" and client.synced_version == 1
        store.kill_shard(store.shard_ids[0])
        store.publish_batch("emb", np.arange(3), np.full((3, DIM), 2.0))
        for sid in store.shard_ids[1:3]:
            store.kill_shard(sid)
        return store, client

    def test_full_coverage_loss_degrades_without_advancing_sync(self):
        store, client = self._coverage_loss()
        deltas, report = client.pull_tables(["emb"])
        assert report.degraded and report.outcome == "degraded"
        assert deltas["emb"][0].size == 0
        assert client.synced_version == 1  # the gap is NOT skipped
        assert report.seconds == client.resilience.deadline_s

    def test_degraded_read_bounded_by_last_sync(self):
        store, client = self._coverage_loss()
        client.pull_tables(["emb"])
        stale = client.degraded_read("emb")
        assert stale.degraded
        assert stale.as_of_version == 1 and stale.current_version == 2
        assert stale.staleness_versions == 1
        # staleness bound: rows are exactly the v1 payloads the client
        # last synced — never the unseen v2 writes, never older either
        assert stale.ids.tolist() == list(range(6))
        assert float(stale.rows.min()) == float(stale.rows.max()) == 1.0
        assert stale.row_versions.max() <= stale.as_of_version
        assert stale.row_staleness.tolist() == [1] * 6

    def test_gap_is_repulled_after_repair(self):
        store, client = self._coverage_loss()
        client.pull_tables(["emb"])  # degraded
        for sid in list(store.down_shard_ids):
            store.revive_shard(sid)
        store.repair()
        deltas, report = client.pull_tables(["emb"])
        assert not report.degraded
        assert client.synced_version == 2
        ids, rows = deltas["emb"]
        assert ids.tolist() == [0, 1, 2]  # the publish missed while down
        assert float(rows.min()) == 2.0

    def test_no_cache_raises_typed_error(self):
        store, client = self._coverage_loss(degraded=False)
        with pytest.raises(DegradedReadError) as exc:
            client.pull_tables(["emb"])
        assert exc.value.synced_version == 1
        assert exc.value.current_version == 2
        assert exc.value.staleness_versions == 1
        assert client.synced_version == 1


class TestRetryHeal:
    def test_pull_retries_until_fault_plane_heals(self):
        store = make_store(num_shards=4, replication=3)
        client_policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=4, base_backoff_s=0.05)
        )
        client = ShardClient(store, resilience=client_policy)
        store.publish_batch("emb", np.arange(16), np.ones((16, DIM)))
        client.pull_tables(["emb"])
        events = [FaultEvent(0.0, "kill", sid) for sid in store.shard_ids]
        events += [FaultEvent(0.01, "revive", sid) for sid in store.shard_ids]
        plane = FaultPlane(store, FaultSchedule(events))
        client.faults = plane
        client_policy.on_wait = plane.advance_to
        plane.advance_to(0.0)  # everything down: no backups anywhere
        assert len(store.down_shard_ids) == 4
        values = np.full((16, DIM), 7.0)
        # publish cannot land while all shards are down, so stage the
        # next window's state on the store directly after the heal fires:
        # here we only exercise the *pull* retry loop.
        deltas, report = client.pull_tables(["emb"])
        assert report.retries >= 1
        assert not report.degraded and report.outcome == "ok"
        assert store.down_shard_ids == []  # on_wait drove the heal
        del values

    def test_flush_retry_is_idempotent(self):
        store = make_store(num_shards=4, replication=3)
        down = [int(s) for s in store.shard_ids[:2]]
        plane = FaultPlane(
            store,
            FaultSchedule(
                [FaultEvent(0.01, "revive", sid) for sid in down]
            ),
        )
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=4, base_backoff_s=0.05),
            on_wait=plane.advance_to,
        )
        client = ShardClient(store, resilience=policy)
        store.publish_batch("emb", np.arange(8), np.ones((8, DIM)))
        version_before = store.version
        for sid in down:
            store.kill_shard(sid)
        client.stage("emb", np.arange(8), np.full((8, DIM), 3.0))
        report = client.flush()
        # quorum refusals happen before any version bump, so however many
        # attempts the flush took, exactly ONE publish landed
        assert report.retries >= 1
        assert store.version == version_before + 1
        assert client.staged_rows == 0
        found, rows = store.pull_rows("emb", np.arange(8))
        assert bool(found.all()) and float(rows.min()) == 3.0

    def test_flush_exhaustion_raises_and_preserves_staged_rows(self):
        store = make_store(num_shards=4, replication=3)
        policy = ResiliencePolicy(retry=RetryPolicy(max_attempts=2))
        client = ShardClient(store, resilience=policy)
        store.publish_batch("emb", np.arange(8), np.ones((8, DIM)))
        for sid in store.shard_ids[:2]:
            store.kill_shard(sid)
        client.stage("emb", np.arange(8), np.full((8, DIM), 9.0))
        with pytest.raises(QuorumError):
            client.flush()
        assert client.staged_rows == 8  # nothing lost
        assert store.version == 1  # nothing half-applied
        for sid in list(store.down_shard_ids):
            store.revive_shard(sid)
        report = client.flush()  # same staged batch, now it lands
        assert report.rows == 8 and store.version == 2
        _, rows = store.pull_rows("emb", np.arange(8))
        assert float(rows.min()) == 9.0


class TestFacadeTypedErrors:
    def _server(self) -> ParameterServer:
        server = ParameterServer(num_shards=4, row_bytes=DIM * 8, replication=3)
        server.publish_batch("emb", np.arange(12), np.ones((12, DIM)))
        return server

    def test_publish_refused_is_typed_and_atomic(self):
        server = self._server()
        for sid in server.store.shard_ids[:2]:
            server.kill_shard(sid)
        with pytest.raises(PublishRefusedError) as exc:
            server.publish_batch("emb", np.arange(12), np.full((12, DIM), 2.0))
        assert isinstance(exc.value, QuorumError)
        assert server.version == 1  # refused before any bump
        _, rows = server.store.pull_rows("emb", np.arange(12))
        assert float(rows.max()) == 1.0  # no partial write either

    def _exhaust(self, server: ParameterServer) -> None:
        for sid in server.store.shard_ids[:3]:
            server.kill_shard(sid)

    def test_pull_rows_raises_degraded_read_error(self):
        server = self._server()
        self._exhaust(server)
        with pytest.raises(DegradedReadError) as exc:
            server.pull_rows("emb", np.arange(12))
        assert exc.value.reason == "coverage"
        found, rows = server.pull_rows(
            "emb", np.arange(12), degraded_ok=True
        )
        # best-effort: surviving replicas answer what they can (rows whose
        # every live owner is down stay missing), and what IS served is
        # the acknowledged payload, never garbage
        assert bool(found.any())
        assert float(rows[found].max()) == float(rows[found].min()) == 1.0

    def test_pull_delta_degraded_ok_returns_own_sync_point(self):
        server = self._server()
        self._exhaust(server)
        with pytest.raises(DegradedReadError):
            server.pull_delta("emb", 0)
        ids, rows, version = server.pull_delta("emb", 0, degraded_ok=True)
        assert ids.size == 0 and rows.shape[0] == 0
        assert version == 0  # caller keeps its sync point: gap re-pulled
