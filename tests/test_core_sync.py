"""Tests for Algorithm 3: sparse data-parallel LoRA with priority merge."""

import numpy as np
import pytest

from repro.core.sync import SparseLoRASynchronizer, priority_merge
from repro.core.trainer import LoRATrainer, TrainerConfig
from repro.data.stream import InferenceLogBuffer
from repro.data.synthetic import DriftingCTRStream, StreamConfig
from repro.dlrm.model import DLRM, DLRMConfig

TABLE_SIZES = (80, 60)


def _make_trainers(n, seed=0):
    model = DLRM(
        DLRMConfig(
            num_dense=3,
            embedding_dim=8,
            table_sizes=TABLE_SIZES,
            bottom_mlp=(8,),
            top_mlp=(8,),
            seed=seed,
        )
    )
    trainers = []
    for r in range(n):
        trainers.append(
            LoRATrainer(
                model.copy(),
                InferenceLogBuffer(600),
                TrainerConfig(
                    rank=4,
                    dynamic_rank=False,
                    dynamic_prune=False,
                    lr=0.1,
                    seed=r,
                ),
            )
        )
    return trainers


def _stream(seed=1):
    return DriftingCTRStream(
        StreamConfig(table_sizes=TABLE_SIZES, num_dense=3, seed=seed)
    )


class TestPriorityMerge:
    def test_highest_rank_wins(self):
        merged = priority_merge(
            [
                {1: np.array([1.0]), 2: np.array([1.0])},
                {1: np.array([2.0])},
                {2: np.array([3.0])},
            ]
        )
        assert merged[1][0] == 2.0  # rank 1 beats rank 0
        assert merged[2][0] == 3.0  # rank 2 beats rank 0

    def test_disjoint_union(self):
        merged = priority_merge(
            [{1: np.array([1.0])}, {2: np.array([2.0])}]
        )
        assert set(merged) == {1, 2}

    def test_empty(self):
        assert priority_merge([]) == {}


class TestSynchronizer:
    def test_validation(self):
        with pytest.raises(ValueError):
            SparseLoRASynchronizer([], sync_interval=4)
        with pytest.raises(ValueError):
            SparseLoRASynchronizer(_make_trainers(1), sync_interval=0)

    def test_sync_fires_on_interval(self):
        trainers = _make_trainers(2)
        sync = SparseLoRASynchronizer(trainers, sync_interval=3)
        stream = _stream()
        for step in range(6):
            batches = []
            for _ in range(2):
                b = stream.next_batch(32)
                batches.append((b.dense, b.sparse_ids, b.labels))
            sync.step_all(batches)
        assert sync.rounds == 2
        assert len(sync.reports) == 2

    def test_replicas_converge_after_sync(self):
        trainers = _make_trainers(2)
        sync = SparseLoRASynchronizer(trainers, sync_interval=100)
        stream = _stream()
        for _ in range(5):
            batches = []
            for _ in range(2):
                b = stream.next_batch(32)
                batches.append((b.dense, b.sparse_ids, b.labels))
            sync.step_all(batches)
        diverged = sync.replica_divergence(0)
        assert diverged > 0
        sync.sync()
        converged = sync.replica_divergence(0)
        assert converged < diverged * 0.1

    def test_sync_report_accounting(self):
        trainers = _make_trainers(2)
        sync = SparseLoRASynchronizer(trainers, sync_interval=1)
        stream = _stream()
        b = stream.next_batch(32)
        batches = [(b.dense, b.sparse_ids, b.labels)] * 2
        sync.step_all(batches)
        report = sync.reports[0]
        assert report.merged_rows > 0
        assert report.bytes_exchanged > 0
        assert report.total_seconds > 0

    def test_supports_cleared_after_sync(self):
        trainers = _make_trainers(2)
        sync = SparseLoRASynchronizer(trainers, sync_interval=1)
        stream = _stream()
        b = stream.next_batch(16)
        sync.step_all([(b.dense, b.sparse_ids, b.labels)] * 2)
        assert all(
            not s for rank_s in sync._supports for s in rank_s
        )

    def test_single_rank_sync_is_trivial(self):
        trainers = _make_trainers(1)
        sync = SparseLoRASynchronizer(trainers, sync_interval=1)
        stream = _stream()
        b = stream.next_batch(16)
        sync.step_all([(b.dense, b.sparse_ids, b.labels)])
        assert sync.replica_divergence(0) == 0.0

    def test_merged_values_propagate_to_all_ranks(self):
        trainers = _make_trainers(3)
        sync = SparseLoRASynchronizer(trainers, sync_interval=100)
        stream = _stream()
        # only rank 2 trains
        b = stream.next_batch(32)
        sync.local_step(2, b.dense, b.sparse_ids, b.labels)
        sync.sync()
        ids = trainers[2].lora[0].active_ids
        if ids.size:
            src = trainers[2].lora[0].delta_rows(ids)
            for other in (0, 1):
                np.testing.assert_allclose(
                    trainers[other].lora[0].delta_rows(ids), src, atol=1e-9
                )

    def test_losses_returned_per_rank(self):
        trainers = _make_trainers(2)
        sync = SparseLoRASynchronizer(trainers, sync_interval=10)
        stream = _stream()
        b = stream.next_batch(16)
        losses = sync.step_all([(b.dense, b.sparse_ids, b.labels)] * 2)
        assert len(losses) == 2
        assert all(l > 0 for l in losses)


class TestStoreBroadcastPath:
    """Merged rows publish to the sharded parameter plane when attached."""

    def test_sync_publishes_merged_rows(self):
        from repro.cluster.shardstore import ShardClient, ShardedParameterStore

        trainers = _make_trainers(2)
        store = ShardedParameterStore(num_shards=2, row_bytes=4 * 8)
        sync = SparseLoRASynchronizer(trainers, sync_interval=10, store=store)
        observer = ShardClient(store)
        stream = _stream()
        b = stream.next_batch(32)
        sync.local_step(0, b.dense, b.sparse_ids, b.labels)
        sync.local_step(1, b.dense, b.sparse_ids, b.labels)
        report = sync.sync()
        assert len(sync.publish_reports) == 1
        # one version bump per round, covering every field's merged rows
        assert store.version == 1
        assert sync.publish_reports[0].rows == report.merged_rows
        deltas, pull = observer.pull_tables(
            [f"lora_a/{f}" for f in range(sync.num_fields)]
        )
        assert pull.rows == report.merged_rows
        # the published rows match the merged A rows every rank applied
        for f in range(sync.num_fields):
            got_ids, got_rows = deltas[f"lora_a/{f}"]
            if got_ids.size:
                ids, rows = trainers[0].lora[f].gather_rows(got_ids)
                np.testing.assert_array_equal(got_ids, ids)
                np.testing.assert_allclose(got_rows, rows, atol=1e-9)

    def test_no_store_means_no_publishing(self):
        trainers = _make_trainers(2)
        sync = SparseLoRASynchronizer(trainers, sync_interval=10)
        stream = _stream()
        b = stream.next_batch(16)
        sync.local_step(0, b.dense, b.sparse_ids, b.labels)
        sync.sync()
        assert sync.store_client is None
        assert sync.publish_reports == []
