"""Property tests: vectorized kernels vs per-id reference implementations.

The kernel layer (``repro.core.kernels`` and the batched paths built on it)
replaced dict/loop implementations of LoRA delta application, gradient
accumulation, hot-index membership and fleet routing.  These tests keep
small per-id reference implementations of the original semantics and check
the vectorized paths against them over randomized inputs — including
duplicate ids, capacity exhaustion, expiry boundaries and bounded-load
saturation.
"""

import numpy as np
import pytest

from repro.core.hot_index import HotIndexFilter
from repro.core.kernels import IdSlotTable, splitmix64
from repro.core.lora import LoRAAdapter
from repro.serving.router import ConsistentHashRouter

# ------------------------------------------------------------- references


def ref_delta_rows(a, b, id_to_slot, ids):
    """Seed implementation: one dict probe + matvec per id."""
    out = np.zeros((len(ids), b.shape[1]))
    for j, i in enumerate(ids):
        slot = id_to_slot.get(int(i))
        if slot is not None:
            out[j] = a[slot] @ b
    return out


def ref_accumulate_grad(a, b, id_to_slot, free_slots, ids, grads, lr):
    """Seed implementation: strictly sequential per-row SGD."""
    a = a.copy()
    b = b.copy()
    grad_b = np.zeros_like(b)
    updated = 0
    for i, g in zip(ids, grads):
        slot = id_to_slot.get(int(i))
        if slot is None:
            if not free_slots:
                continue
            slot = free_slots.pop()
            id_to_slot[int(i)] = slot
            a[slot] = 0.0
        grad_b += np.outer(a[slot], g)
        a[slot] -= lr * (b @ g)
        updated += 1
    b -= lr * grad_b
    return a, b, updated


def ref_is_hot(table, now, expiry, ids):
    """Seed implementation: one dict probe per id."""
    if expiry is None:
        return np.array([int(i) in table for i in ids], dtype=bool)
    horizon = now - expiry
    return np.array(
        [table.get(int(i), -np.inf) >= horizon for i in ids], dtype=bool
    )


def ref_route(router, keys):
    """Seed implementation: sequential bounded-load ring probing.

    Shares the router's (stable) hashing so it isolates the routing logic;
    hash stability itself is pinned in test_serving_router.py.
    """
    load = {int(n): 0 for n in router.node_ids}
    routed = spilled = 0
    out = []
    ring_nodes = router._ring_nodes
    n = ring_nodes.size
    for idx in router._ring_indices(np.asarray(keys)):
        placed = False
        for probe in range(n):
            node = int(ring_nodes[(idx + probe) % n])
            if router.capacity_qps is None or load[node] < router.capacity_qps:
                load[node] += 1
                if probe == 0:
                    routed += 1
                else:
                    spilled += 1
                out.append(node)
                placed = True
                break
        if not placed:
            node = int(ring_nodes[idx])
            load[node] += 1
            spilled += 1
            out.append(node)
    return np.array(out, dtype=np.int64), routed, spilled, load


def fresh_free_list(capacity, used):
    """The seed free-slot stack after ``used`` pops from a fresh adapter."""
    return list(range(capacity - 1, used - 1, -1))


# ---------------------------------------------------------------- id table


class TestIdSlotTable:
    @pytest.mark.parametrize("universe", [None, 500])
    def test_matches_dict_over_random_ops(self, universe):
        rng = np.random.default_rng(0)
        table = IdSlotTable(40, universe=universe)
        ref_map: dict[int, int] = {}
        ref_free = list(range(39, -1, -1))
        for _ in range(30):
            ids = rng.integers(0, 200, size=rng.integers(1, 50))
            if rng.random() < 0.6:
                slots, _ = table.insert(ids)
                for j, i in enumerate(ids):
                    i = int(i)
                    if i in ref_map:
                        assert slots[j] == ref_map[i]
                    elif ref_free:
                        ref_map[i] = ref_free.pop()
                        assert slots[j] == ref_map[i]
                    else:
                        assert slots[j] == -1
            else:
                removable = np.unique(ids)
                table.remove(removable)
                for i in removable:
                    slot = ref_map.pop(int(i), None)
                    if slot is not None:
                        ref_free.append(slot)
            probe = rng.integers(0, 200, size=64)
            got = table.lookup(probe)
            want = np.array(
                [ref_map.get(int(i), -1) for i in probe], dtype=np.int64
            )
            np.testing.assert_array_equal(got, want)
            assert table.size == len(ref_map)

    def test_first_come_first_served_on_exhaustion(self):
        table = IdSlotTable(3)
        slots, _ = table.insert(np.array([10, 20, 10, 30, 40]))
        # 10, 20, 30 get slots in first-occurrence order; 40 is denied
        np.testing.assert_array_equal(slots, [0, 1, 0, 2, -1])

    def test_dense_and_sparse_lanes_agree(self):
        rng = np.random.default_rng(3)
        sparse = IdSlotTable(64)
        dense = IdSlotTable(64, universe=1000)
        for _ in range(20):
            ids = rng.integers(0, 1000, size=32)
            s1, _ = sparse.insert(ids)
            s2, _ = dense.insert(ids)
            np.testing.assert_array_equal(s1, s2)
            drop = rng.integers(0, 1000, size=8)
            sparse.remove(drop)
            dense.remove(drop)
            probe = rng.integers(0, 1000, size=128)
            np.testing.assert_array_equal(
                sparse.lookup(probe), dense.lookup(probe)
            )

    def test_splitmix64_is_deterministic(self):
        vals = np.array([0, 1, 2**40, -5], dtype=np.int64)
        # fixed expectations: must never change across runs or platforms
        np.testing.assert_array_equal(
            splitmix64(vals, seed=0) % np.uint64(1 << 32),
            splitmix64(vals, seed=0) % np.uint64(1 << 32),
        )
        assert splitmix64(vals, seed=0).dtype == np.uint64
        assert not np.array_equal(splitmix64(vals, 0), splitmix64(vals, 1))


# -------------------------------------------------------------------- lora


@pytest.mark.parametrize("universe", [None, 4000])
class TestLoRAEquivalence:
    def _adapter(self, universe, capacity=50, seed=0):
        return LoRAAdapter(
            dim=16,
            rank=4,
            capacity=capacity,
            rng=np.random.default_rng(seed),
            universe=universe,
        )

    def test_delta_rows_matches_reference(self, universe):
        rng = np.random.default_rng(1)
        adapter = self._adapter(universe)
        active = rng.choice(2000, size=50, replace=False)
        adapter.activate_batch(active)
        adapter.a[:] = rng.normal(size=adapter.a.shape)
        id_to_slot = {
            int(i): int(s)
            for i, s in zip(adapter.active_ids, adapter.active_slots)
        }
        for _ in range(5):
            ids = rng.integers(0, 2000, size=200)
            np.testing.assert_allclose(
                adapter.delta_rows(ids),
                ref_delta_rows(adapter.a, adapter.b, id_to_slot, ids),
                atol=1e-12,
            )

    def test_accumulate_grad_matches_reference(self, universe):
        rng = np.random.default_rng(2)
        adapter = self._adapter(universe)
        pre = np.arange(10, dtype=np.int64)
        adapter.activate_batch(pre)
        adapter.a[:10] = rng.normal(size=(10, 4))
        id_to_slot = {
            int(i): int(s)
            for i, s in zip(adapter.active_ids, adapter.active_slots)
        }
        free = fresh_free_list(adapter.capacity, used=10)
        ids = rng.integers(0, 100, size=120)  # many new ids + repeats
        grads = rng.normal(size=(120, 16))
        ref_a, ref_b, ref_n = ref_accumulate_grad(
            adapter.a, adapter.b, dict(id_to_slot), list(free),
            ids, grads, lr=0.05,
        )
        n = adapter.accumulate_grad(ids, grads, lr=0.05)
        assert n == ref_n
        np.testing.assert_allclose(adapter.a, ref_a, atol=1e-10)
        np.testing.assert_allclose(adapter.b, ref_b, atol=1e-10)

    def test_accumulate_grad_with_exhausted_capacity(self, universe):
        rng = np.random.default_rng(3)
        adapter = self._adapter(universe, capacity=8)
        ids = rng.integers(0, 40, size=60)  # far more ids than slots
        grads = rng.normal(size=(60, 16))
        ref_a, ref_b, ref_n = ref_accumulate_grad(
            adapter.a, adapter.b, {}, fresh_free_list(8, 0),
            ids, grads, lr=0.1,
        )
        n = adapter.accumulate_grad(ids, grads, lr=0.1)
        assert n == ref_n
        np.testing.assert_allclose(adapter.a, ref_a, atol=1e-10)
        np.testing.assert_allclose(adapter.b, ref_b, atol=1e-10)

    def test_duplicate_ids_keep_sequential_semantics(self, universe):
        rng = np.random.default_rng(4)
        adapter = self._adapter(universe)
        ids = np.array([5, 5, 5, 7, 5, 7], dtype=np.int64)
        grads = rng.normal(size=(6, 16))
        ref_a, ref_b, ref_n = ref_accumulate_grad(
            adapter.a, adapter.b, {}, fresh_free_list(adapter.capacity, 0),
            ids, grads, lr=0.2,
        )
        n = adapter.accumulate_grad(ids, grads, lr=0.2)
        assert n == ref_n == 6
        np.testing.assert_allclose(adapter.a, ref_a, atol=1e-10)
        np.testing.assert_allclose(adapter.b, ref_b, atol=1e-10)


# --------------------------------------------------------------- hot index


@pytest.mark.parametrize("num_rows", [None, 3000])
class TestHotIndexEquivalence:
    def test_without_expiry(self, num_rows):
        rng = np.random.default_rng(5)
        filt = HotIndexFilter(1, num_rows=num_rows)
        table: dict[int, float] = {}
        for _ in range(10):
            marked = rng.integers(0, 3000, size=100)
            filt.mark(0, marked)
            for i in marked:
                table[int(i)] = 0.0
            ids = rng.integers(0, 3000, size=400)
            np.testing.assert_array_equal(
                filt.is_hot(0, ids), ref_is_hot(table, 0.0, None, ids)
            )
        assert filt.hot_count(0) == len(table)

    def test_with_expiry(self, num_rows):
        rng = np.random.default_rng(6)
        expiry = 10.0
        filt = HotIndexFilter(1, expiry_s=expiry, num_rows=num_rows)
        table: dict[int, float] = {}
        now = 0.0
        for step in range(12):
            now = float(step * 3)
            marked = rng.integers(0, 3000, size=80)
            filt.mark(0, marked, now=now)
            for i in marked:
                table[int(i)] = now
            ids = rng.integers(0, 3000, size=300)
            np.testing.assert_array_equal(
                filt.is_hot(0, ids), ref_is_hot(table, now, expiry, ids)
            )
            horizon = now - expiry
            assert filt.hot_count(0) == sum(
                1 for ts in table.values() if ts >= horizon
            )
        # sweep drops exactly the reference's expired set
        horizon = now - expiry
        expected_drop = sum(1 for ts in table.values() if ts < horizon)
        assert filt.sweep() == expected_drop


# ------------------------------------------------------------------ router


class TestRouterEquivalence:
    @pytest.mark.parametrize("capacity", [None, 40.0])
    def test_route_matches_sequential_reference(self, capacity):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 1 << 31, size=500)
        router = ConsistentHashRouter(
            [3, 1, 4, 5], virtual_nodes=32, capacity_qps=capacity
        )
        want, routed, spilled, load = ref_route(router, keys)
        got = router.route(keys)
        np.testing.assert_array_equal(got, want)
        assert router.stats.routed == routed
        assert router.stats.spilled == spilled
        assert router._window_load == load

    def test_unsaturated_batch_stays_vectorized_and_exact(self):
        rng = np.random.default_rng(8)
        keys = rng.integers(0, 1 << 31, size=300)
        # ample capacity: no node can saturate within the batch
        router = ConsistentHashRouter([0, 1, 2], capacity_qps=10_000)
        want, routed, spilled, _ = ref_route(router, keys)
        got = router.route(keys)
        np.testing.assert_array_equal(got, want)
        assert (router.stats.routed, router.stats.spilled) == (routed, spilled)
