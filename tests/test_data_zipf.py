"""Tests for the Zipf sampler and access-distribution analysis."""

import numpy as np
import pytest

from repro.data.zipf import (
    ZipfSampler,
    access_cdf,
    calibrate_zipf_exponent,
    zipf_head_share,
)


class TestZipfSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, exponent=0)

    def test_samples_in_range(self):
        s = ZipfSampler(100, 1.2, rng=np.random.default_rng(0))
        ids = s.sample(10_000)
        assert ids.min() >= 0 and ids.max() < 100

    def test_skew_increases_with_exponent(self):
        flat = ZipfSampler(1000, 0.3, rng=np.random.default_rng(0), permute=False)
        steep = ZipfSampler(1000, 2.0, rng=np.random.default_rng(0), permute=False)
        share_flat = np.mean(flat.sample(20_000) < 100)
        share_steep = np.mean(steep.sample(20_000) < 100)
        assert share_steep > share_flat

    def test_unpermuted_rank_order(self):
        s = ZipfSampler(100, 1.5, rng=np.random.default_rng(1), permute=False)
        counts = np.bincount(s.sample(50_000), minlength=100)
        assert counts[0] > counts[10] > counts[50]

    def test_probability_of_id_sums_to_one(self):
        s = ZipfSampler(50, 1.0, rng=np.random.default_rng(2))
        p = s.probability_of_id(np.arange(50))
        assert p.sum() == pytest.approx(1.0)

    def test_hot_ids_are_hottest(self):
        s = ZipfSampler(100, 1.5, rng=np.random.default_rng(3))
        hot = s.hot_ids(0.1)
        assert len(hot) == 10
        p_hot = s.probability_of_id(hot).min()
        cold = np.setdiff1d(np.arange(100), hot)
        assert p_hot >= s.probability_of_id(cold).max()

    def test_empirical_matches_analytic_head_share(self):
        size, exp = 2000, 1.4
        s = ZipfSampler(size, exp, rng=np.random.default_rng(4))
        ids = s.sample(200_000)
        hot = set(s.hot_ids(0.10).tolist())
        emp = np.mean([i in hot for i in ids])
        assert emp == pytest.approx(zipf_head_share(exp, size, 0.10), abs=0.01)


class TestHeadShare:
    def test_full_head_is_one(self):
        assert zipf_head_share(1.2, 100, 1.0) == pytest.approx(1.0)

    def test_monotone_in_exponent(self):
        shares = [zipf_head_share(s, 1000, 0.1) for s in (0.5, 1.0, 1.5)]
        assert shares[0] < shares[1] < shares[2]

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            zipf_head_share(1.0, 100, 0.0)


class TestCalibration:
    def test_reproduces_paper_share(self):
        exp = calibrate_zipf_exponent(10_000, 0.10, 0.938)
        assert zipf_head_share(exp, 10_000, 0.10) == pytest.approx(0.938, abs=0.005)

    def test_unbracketed_target_raises(self):
        with pytest.raises(ValueError):
            calibrate_zipf_exponent(100, 0.5, 0.01, lo=1.0, hi=2.0)


class TestAccessCDF:
    def test_monotone_and_bounded(self):
        counts = np.random.default_rng(0).integers(0, 100, 500)
        counts[0] = 1  # ensure some accesses
        idx_frac, acc_frac = access_cdf(counts)
        assert np.all(np.diff(acc_frac) >= 0)
        assert acc_frac[-1] == pytest.approx(1.0)
        assert idx_frac[-1] == pytest.approx(1.0)

    def test_no_accesses_raises(self):
        with pytest.raises(ValueError):
            access_cdf(np.zeros(10))

    def test_skewed_counts_front_loaded(self):
        counts = np.array([1000, 10, 10, 10, 10])
        idx_frac, acc_frac = access_cdf(counts)
        assert acc_frac[0] > 0.9
