"""Unit tests for the ``repro.cluster.resilience`` client plane.

Covers each piece in isolation — deadline budgets, deterministic retry
backoff, the circuit-breaker state machine (including the lazy
boundary-stamped open -> half-open transition and its byte-identical
transition log across processes), health tracking, the hedging trigger,
and the bounded-staleness degraded-read cache.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cluster.resilience import (
    BreakerConfig,
    CircuitBreaker,
    DeadlineBudget,
    DeadlineExceeded,
    DegradedReadError,
    DegradedReadMode,
    HealthTracker,
    HedgedRead,
    ResiliencePolicy,
    RetryPolicy,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestDeadlineBudget:
    def test_spend_and_remaining(self):
        budget = DeadlineBudget(total_s=1.0)
        assert budget.remaining() == pytest.approx(1.0)
        budget.spend(0.25)
        assert budget.remaining() == pytest.approx(0.75)
        assert not budget.expired

    def test_spend_clamps_and_expires(self):
        budget = DeadlineBudget(total_s=0.5)
        budget.spend(2.0)
        assert budget.remaining() == 0.0
        assert budget.expired

    def test_require_raises_typed_error(self):
        budget = DeadlineBudget(total_s=0.1)
        budget.spend(0.2)
        with pytest.raises(DeadlineExceeded) as exc:
            budget.require("pull emb")
        assert "pull emb" in str(exc.value)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineBudget(total_s=0.0)


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        series_a = [a.backoff_s(n, key=3) for n in range(1, 5)]
        series_b = [b.backoff_s(n, key=3) for n in range(1, 5)]
        assert series_a == series_b

    def test_different_seed_or_key_changes_jitter(self):
        base = RetryPolicy(seed=7)
        assert base.backoff_s(1, key=1) != RetryPolicy(seed=8).backoff_s(
            1, key=1
        )
        assert base.backoff_s(1, key=1) != base.backoff_s(1, key=2)

    def test_exponential_growth_capped(self):
        retry = RetryPolicy(
            base_backoff_s=0.1,
            multiplier=2.0,
            max_backoff_s=0.3,
            jitter_frac=0.0,
        )
        assert retry.backoff_s(1) == pytest.approx(0.1)
        assert retry.backoff_s(2) == pytest.approx(0.2)
        assert retry.backoff_s(3) == pytest.approx(0.3)  # capped
        assert retry.backoff_s(9) == pytest.approx(0.3)

    def test_jitter_only_shrinks_within_fraction(self):
        retry = RetryPolicy(base_backoff_s=0.1, jitter_frac=0.5, seed=11)
        for attempt in range(1, 6):
            backoff = retry.backoff_s(attempt, key=5)
            ceiling = min(
                retry.base_backoff_s * retry.multiplier ** (attempt - 1),
                retry.max_backoff_s,
            )
            assert ceiling * 0.5 <= backoff <= ceiling

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_frac=1.5)


class TestCircuitBreaker:
    def _tripped(self) -> CircuitBreaker:
        brk = CircuitBreaker(
            BreakerConfig(window=4, min_samples=2, cooldown_s=1.0)
        )
        brk.record_failure(0.1)
        brk.record_failure(0.2)
        return brk

    def test_trips_at_failure_rate(self):
        brk = self._tripped()
        assert brk.state(0.3) == "open"
        assert not brk.allow(0.3)

    def test_successes_keep_it_closed(self):
        brk = CircuitBreaker(BreakerConfig(window=4, min_samples=2))
        for t in range(8):
            brk.record_success(float(t))
        assert brk.state(8.0) == "closed"
        assert brk.allow(8.0)

    def test_half_open_after_cooldown_with_probe_limit(self):
        brk = self._tripped()
        assert brk.state(1.5) == "half_open"
        assert brk.allow(1.5)       # the single probe slot
        assert not brk.allow(1.5)   # second concurrent probe refused

    def test_probe_success_closes(self):
        brk = self._tripped()
        assert brk.allow(1.5)
        brk.record_success(1.6)
        assert brk.state(1.7) == "closed"

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        brk = self._tripped()
        assert brk.allow(1.5)
        brk.record_failure(1.6)
        assert brk.state(1.7) == "open"
        assert brk.state(2.5) == "open"      # new cooldown from 1.6
        assert brk.state(2.7) == "half_open"

    def test_lazy_transition_stamped_at_boundary(self):
        a = self._tripped()
        b = self._tripped()
        a.state(1.2001)   # polled just past the boundary
        b.state(9.0)      # polled much later
        assert a.transitions == b.transitions
        assert a.transitions[-1] == (1.2, "open", "half_open")

    def test_transitions_byte_identical_across_processes(self):
        script = (
            "from repro.cluster.resilience import BreakerConfig, "
            "CircuitBreaker\n"
            "brk = CircuitBreaker(BreakerConfig(window=4, min_samples=2, "
            "cooldown_s=1.0))\n"
            "brk.record_failure(0.1); brk.record_failure(0.2)\n"
            "brk.allow(1.5); brk.record_failure(1.6)\n"
            "brk.state(2.7); brk.allow(2.7); brk.record_success(2.8)\n"
            "print(repr(brk.transitions))\n"
        )
        outs = []
        for hashseed in ("0", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hashseed
            env["PYTHONPATH"] = os.path.join(REPO, "src")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                timeout=60,
            )
            assert proc.returncode == 0, proc.stderr
            outs.append(proc.stdout)
        assert outs[0] == outs[1]
        assert "half_open" in outs[0]


class TestHealthTracker:
    def test_ewma_and_error_rate(self):
        health = HealthTracker(alpha=0.5)
        health.record(0, 0.1, True)
        health.record(0, 0.3, True)
        assert health.ewma_latency_s(0) == pytest.approx(0.2)
        health.record(0, 0.2, False)
        assert health.error_rate(0) == pytest.approx(0.5)
        assert health.observations(0) == 3

    def test_quantile_inf_when_cold(self):
        health = HealthTracker()
        assert health.latency_quantile(0.95) == float("inf")

    def test_failures_and_hedged_stay_out_of_quantile_window(self):
        health = HealthTracker()
        health.record(0, 0.1, True)
        health.record(1, 99.0, False)            # failure: excluded
        health.record(2, 50.0, True, hedged=True)  # hedged: excluded
        assert health.latency_quantile(1.0) == pytest.approx(0.1)

    def test_replica_order_is_deterministic_and_health_first(self):
        health = HealthTracker()
        health.record(3, 0.5, True)
        health.record(1, 0.1, True)
        health.record(2, 0.1, False)   # errors beat latency
        assert health.replica_order([1, 2, 3]) == [1, 3, 2]
        assert health.replica_order([7, 5]) == [5, 7]  # id tie-break

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthTracker(alpha=0.0)
        with pytest.raises(ValueError):
            HealthTracker(window=0)


class TestHedgedRead:
    def test_cold_tracker_disables_hedging(self):
        hedge = HedgedRead()
        health = HealthTracker()
        assert hedge.hedge_delay_s(health) == float("inf")
        assert not hedge.should_hedge(health, in_flight_s=100.0)

    def test_fires_past_learned_quantile(self):
        hedge = HedgedRead(quantile=0.95)
        health = HealthTracker()
        for _ in range(20):
            health.record(0, 0.01, True)
        assert hedge.hedge_delay_s(health) == pytest.approx(0.01)
        assert hedge.should_hedge(health, in_flight_s=0.02)
        assert not hedge.should_hedge(health, in_flight_s=0.005)

    def test_min_delay_floor(self):
        hedge = HedgedRead(min_delay_s=0.5)
        health = HealthTracker()
        health.record(0, 0.01, True)
        assert hedge.hedge_delay_s(health) == pytest.approx(0.5)


class TestDegradedReadMode:
    def _mode(self) -> DegradedReadMode:
        mode = DegradedReadMode()
        mode.update(
            "emb",
            np.array([1, 2, 3], dtype=np.int64),
            np.full((3, 2), 1.0),
            np.array([1, 1, 1], dtype=np.int64),
            synced_version=1,
        )
        return mode

    def test_serve_returns_cached_rows_flagged_degraded(self):
        mode = self._mode()
        stale = mode.serve("emb", current_version=3)
        assert stale.degraded
        assert stale.ids.tolist() == [1, 2, 3]
        assert stale.as_of_version == 1
        assert stale.staleness_versions == 2
        assert stale.row_staleness.tolist() == [2, 2, 2]

    def test_update_keeps_freshest_row_version(self):
        mode = self._mode()
        mode.update(
            "emb",
            np.array([2, 4], dtype=np.int64),
            np.full((2, 2), 5.0),
            np.array([2, 2], dtype=np.int64),
            synced_version=2,
        )
        stale = mode.serve("emb")
        assert stale.ids.tolist() == [1, 2, 3, 4]
        by_id = dict(zip(stale.ids.tolist(), stale.rows[:, 0].tolist()))
        assert by_id[2] == 5.0 and by_id[1] == 1.0
        assert stale.row_versions.tolist() == [1, 2, 1, 2]

    def test_update_is_idempotent(self):
        mode = self._mode()
        before = mode.serve("emb")
        mode.update(
            "emb",
            np.array([1, 2, 3], dtype=np.int64),
            np.full((3, 2), 1.0),
            np.array([1, 1, 1], dtype=np.int64),
            synced_version=1,
        )
        after = mode.serve("emb")
        np.testing.assert_array_equal(before.ids, after.ids)
        np.testing.assert_array_equal(before.rows, after.rows)

    def test_unseen_table_serves_empty(self):
        stale = DegradedReadMode().serve("ghost", current_version=5)
        assert stale.ids.size == 0 and stale.rows.size == 0
        assert stale.degraded


class TestDegradedReadError:
    def test_carries_staleness_accounting(self):
        err = DegradedReadError(["emb"], synced_version=3, current_version=7)
        assert err.staleness_versions == 4
        assert "emb" in str(err)


class TestResiliencePolicy:
    def test_breakers_are_cached_per_shard(self):
        policy = ResiliencePolicy()
        assert policy.breaker_for(3) is policy.breaker_for(3)
        assert policy.breaker_for(3) is not policy.breaker_for(4)

    def test_open_breakers_counts_at_time(self):
        policy = ResiliencePolicy(
            breaker=BreakerConfig(window=4, min_samples=2, cooldown_s=1.0)
        )
        brk = policy.breaker_for(0)
        brk.record_failure(0.1)
        brk.record_failure(0.2)
        assert policy.open_breakers(0.5) == 1
        assert policy.open_breakers(2.0) == 0  # half-open by then

    def test_transitions_sorted_by_time_then_shard(self):
        policy = ResiliencePolicy(
            breaker=BreakerConfig(window=4, min_samples=2, cooldown_s=1.0)
        )
        for sid in (1, 0):
            brk = policy.breaker_for(sid)
            brk.record_failure(0.1)
            brk.record_failure(0.2)
        rows = policy.breaker_transitions()
        assert rows == sorted(rows, key=lambda r: (r[1], r[0]))
        assert [r[0] for r in rows] == [0, 1]

    def test_wait_advances_clock_and_fires_hook(self):
        seen: list[float] = []
        policy = ResiliencePolicy(on_wait=seen.append)
        policy.wait(0.5)
        policy.wait(0.25)
        assert policy.clock.now() == pytest.approx(0.75)
        assert seen == [pytest.approx(0.5), pytest.approx(0.75)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(attempt_timeout_s=-1.0)
