"""Tests for the co-located node simulator and SLA monitor."""

import numpy as np
import pytest

from repro.hardware.numa import AdaptiveNumaPartitioner
from repro.hardware.topology import EPYC_9684X_DUAL
from repro.serving.engine import ColocatedNodeSimulator, NodeSimConfig
from repro.serving.qos import OUTCOMES, SLAMonitor


@pytest.fixture(scope="module")
def small_sim():
    """Down-scaled simulator so the full test file stays fast."""
    return ColocatedNodeSimulator(
        NodeSimConfig(
            num_rows=20_000,
            accesses_per_window=10_000,
            training_ratio=8.0,
            l3_bytes_per_ccd=int(0.025 * 1024 ** 2),
            seed=0,
        )
    )


@pytest.fixture(scope="module")
def ablation(small_sim):
    return small_sim.ablation()


class TestAblationShape:
    """The Fig. 16 ordering must hold even at test scale."""

    def test_naive_colocations_hurts_p99(self, ablation):
        assert ablation["w/o Opt"].p99_ms > 1.5 * ablation["Only Infer"].p99_ms

    def test_scheduling_restores_p99(self, ablation):
        only = ablation["Only Infer"].p99_ms
        sched = ablation["w/ Scheduling"].p99_ms
        assert sched < 1.15 * only

    def test_full_opt_at_least_as_good_as_scheduling(self, ablation):
        assert (
            ablation["w/ Reuse+Scheduling"].p99_ms
            <= ablation["w/ Scheduling"].p99_ms * 1.05
        )

    def test_naive_collapses_inference_hit_ratio(self, ablation):
        assert (
            ablation["w/o Opt"].inference_hit_ratio
            < ablation["Only Infer"].inference_hit_ratio
        )

    def test_scheduling_protects_inference_cache(self, ablation):
        assert ablation[
            "w/ Scheduling"
        ].inference_hit_ratio == pytest.approx(
            ablation["Only Infer"].inference_hit_ratio, abs=0.05
        )

    def test_reuse_absorbs_trainer_reads(self, ablation):
        assert ablation["w/ Reuse+Scheduling"].reuse_ratio > 0.1
        assert (
            ablation["w/ Reuse+Scheduling"].training_hit_ratio
            > ablation["w/ Scheduling"].training_hit_ratio
        )

    def test_inference_only_has_no_training(self, ablation):
        assert ablation["Only Infer"].training_hit_ratio == 0.0
        assert ablation["Only Infer"].reuse_ratio == 0.0


class TestAdaptiveLoop:
    def test_run_adaptive_produces_results(self, small_sim):
        part = AdaptiveNumaPartitioner(
            EPYC_9684X_DUAL,
            min_inference_ccds=4,
            max_training_ccds=4,
            initial_training_ccds=2,
        )
        results = small_sim.run_adaptive(part, cycles=3)
        assert len(results) == 3
        assert len(part.history) == 3

    def test_measure_p99_hook(self, small_sim):
        p99 = small_sim.measure_p99_for_partition(10, 2)
        assert p99 > 0


class TestSLAMonitor:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLAMonitor(p99_target_ms=0)

    def test_windows_close_at_size(self):
        mon = SLAMonitor(p99_target_ms=10, window_requests=100)
        reports = mon.observe(np.full(250, 5.0))
        assert len(reports) == 2
        assert len(mon.reports) == 2
        assert all(not r.violated for r in reports)

    def test_violation_detection(self):
        mon = SLAMonitor(p99_target_ms=10, window_requests=100)
        reports = mon.observe(np.full(100, 50.0))
        assert reports[0].violated
        assert mon.violation_rate == 1.0

    def test_percentile_ordering(self):
        mon = SLAMonitor(window_requests=1000)
        rng = np.random.default_rng(0)
        (report,) = mon.observe(rng.exponential(5.0, 1000))
        assert report.p50_ms < report.p95_ms < report.p99_ms

    def test_current_p99_from_partial_window(self):
        mon = SLAMonitor(window_requests=1000)
        mon.observe(np.full(10, 7.0))
        assert mon.current_p99() == pytest.approx(7.0)

    def test_current_p99_empty_is_nan(self):
        assert np.isnan(SLAMonitor().current_p99())


class TestSLATelemetry:
    """SLAMonitor feeds the shared telemetry plane (reports unchanged)."""

    def test_observe_feeds_shared_latency_histogram(self):
        from repro.obs import registry

        reg = registry()
        hist = reg.histogram("serving.latency_ms")
        requests = reg.counter("serving.requests")
        before = (hist.count, requests.value)
        mon = SLAMonitor(window_requests=100)
        mon.observe(np.full(250, 4.0))
        assert hist.count - before[0] == 250
        assert requests.value - before[1] == 250

    def test_violation_files_flight_recorder_event(self):
        from repro.obs import flight_recorder, registry

        reg = registry()
        violations = reg.counter("serving.sla.violations")
        before = violations.value
        events_before = len(flight_recorder().events("serving.sla"))
        mon = SLAMonitor(p99_target_ms=10, window_requests=50)
        mon.observe(np.full(50, 99.0))
        assert violations.value == before + 1
        events = flight_recorder().events("serving.sla")
        assert len(events) == events_before + 1
        assert events[-1].kind == "violation"
        assert dict(events[-1].attrs)["num_requests"] == 50

    def test_disabled_registry_leaves_reports_intact(self):
        from repro.obs import registry, set_enabled

        reg = registry()
        hist = reg.histogram("serving.latency_ms")
        before = hist.count
        mon = SLAMonitor(p99_target_ms=10, window_requests=100)
        try:
            set_enabled(False)
            (report,) = mon.observe(np.full(100, 50.0))
        finally:
            set_enabled(True)
        assert hist.count == before  # telemetry skipped
        assert report.violated  # report semantics untouched


class TestSLAOutcomeClasses:
    """Satellite 2 of ISSUE 10: requests that were hedged, degraded,
    timed out, or shed are counted per window, separately from clean
    ones — tail percentiles alone can't tell "fast because healthy"
    from "fast because we gave up"."""

    def test_outcome_order_pinned(self):
        assert OUTCOMES == ("clean", "hedged", "degraded", "timed_out", "shed")

    def test_outcomes_partition_the_window(self):
        mon = SLAMonitor(p99_target_ms=10, window_requests=10)
        outcomes = ["clean"] * 5 + ["hedged"] * 2 + ["degraded"] * 1 + [
            "timed_out"
        ] * 1 + ["shed"] * 1
        (report,) = mon.observe(np.full(10, 2.0), outcomes=outcomes)
        assert report.num_clean == 5
        assert report.num_hedged == 2
        assert report.num_degraded == 1
        assert report.num_timed_out == 1
        assert report.num_shed == 1
        assert (
            report.num_clean + report.num_hedged + report.num_degraded
            + report.num_timed_out + report.num_shed
        ) == report.num_requests
        assert report.clean_fraction == pytest.approx(0.5)

    def test_counts_split_across_windows(self):
        mon = SLAMonitor(p99_target_ms=10, window_requests=4)
        outcomes = ["clean", "hedged", "clean", "clean", "shed", "clean"]
        reports = mon.observe(np.full(6, 1.0), outcomes=outcomes)
        assert len(reports) == 1
        assert reports[0].num_hedged == 1 and reports[0].num_shed == 0
        (second,) = mon.observe(
            np.full(2, 1.0), outcomes=["degraded", "clean"]
        )
        assert second.num_shed == 1  # carried over from the partial tail
        assert second.num_degraded == 1

    def test_omitted_outcomes_mean_all_clean(self):
        mon = SLAMonitor(p99_target_ms=10, window_requests=100)
        samples = np.linspace(1.0, 9.0, 100)
        (report,) = mon.observe(samples)
        assert report.num_clean == report.num_requests == 100
        assert report.clean_fraction == 1.0
        # and the latency summary is bit-identical to an explicit
        # all-clean call — the pre-resilience behaviour
        explicit = SLAMonitor(p99_target_ms=10, window_requests=100)
        (report2,) = explicit.observe(samples, outcomes=["clean"] * 100)
        assert (report.p50_ms, report.p95_ms, report.p99_ms) == (
            report2.p50_ms, report2.p95_ms, report2.p99_ms,
        )

    def test_size_mismatch_raises(self):
        mon = SLAMonitor(window_requests=10)
        with pytest.raises(ValueError):
            mon.observe(np.full(3, 1.0), outcomes=["clean"] * 2)

    def test_unknown_outcome_raises(self):
        mon = SLAMonitor(window_requests=10)
        with pytest.raises(KeyError):
            mon.observe(np.full(1, 1.0), outcomes=["mystery"])

    def test_outcome_counters_feed_telemetry(self):
        from repro.obs import registry

        reg = registry()
        hedged = reg.counter("serving.sla.hedged")
        shed = reg.counter("serving.sla.shed")
        before = (hedged.value, shed.value)
        mon = SLAMonitor(window_requests=100)
        mon.observe(
            np.full(5, 1.0),
            outcomes=["hedged", "hedged", "shed", "clean", "clean"],
        )
        assert hedged.value - before[0] == 2
        assert shed.value - before[1] == 1

    def test_empty_window_clean_fraction_is_zero(self):
        from repro.serving.qos import SLAReport

        report = SLAReport(
            window_id=1, p50_ms=0.0, p95_ms=0.0, p99_ms=0.0,
            violated=False, num_requests=0,
        )
        assert report.clean_fraction == 0.0
