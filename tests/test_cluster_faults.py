"""Fault-injection plane tests, plus failure coverage for the legacy
``ParameterServer`` facade and the ``TrainingCluster`` publish path.

Satellite 4 of ISSUE 9: a mid-window shard kill must surface to the
trainer as a typed ``QuorumError`` with the window's rows retained (loud
and retryable, never silent row loss), and an inference node's staleness
must recover within one sync window after revive + repair.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.consistency import check_replica_convergence
from repro.cluster.faults import FaultEvent, FaultPlane, FaultSchedule
from repro.cluster.nodes import InferenceNode, TrainingCluster
from repro.cluster.parameter_server import ParameterServer
from repro.cluster.shardstore import QuorumError
from repro.data.synthetic import DriftingCTRStream, StreamConfig
from repro.dlrm.model import DLRM, DLRMConfig
from repro.obs.clock import SimClock


class TestFaultEvent:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "explode", 1)

    def test_shard_required_except_delay(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "kill")
        FaultEvent(0.0, "delay", factor=2.0)  # fine without a shard

    def test_delay_factor_bounds(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "delay", factor=0.5)


class TestFaultSchedule:
    def test_events_sorted_and_due_is_monotone(self):
        schedule = FaultSchedule(
            [
                FaultEvent(5.0, "kill", 1),
                FaultEvent(1.0, "drop_publish", 2),
                FaultEvent(3.0, "delay", factor=2.0),
            ]
        )
        assert [e.at_s for e in schedule.events] == [1.0, 3.0, 5.0]
        assert [e.kind for e in schedule.due(3.0)] == ["drop_publish", "delay"]
        assert schedule.due(3.0) == []  # consumed exactly once
        assert [e.kind for e in schedule.due(10.0)] == ["kill"]
        assert schedule.remaining == 0

    def test_random_is_seed_deterministic(self):
        a = FaultSchedule.random(7, list(range(8)))
        b = FaultSchedule.random(7, list(range(8)))
        assert a.events == b.events
        c = FaultSchedule.random(8, list(range(8)))
        assert a.events != c.events

    def test_random_respects_concurrency_bound(self):
        for seed in range(10):
            schedule = FaultSchedule.random(
                seed, list(range(8)), kills=6, horizon_s=200.0,
                max_concurrent_down=2,
            )
            down: set[int] = set()
            for event in schedule.events:
                if event.kind == "kill":
                    assert event.shard_id not in down
                    down.add(event.shard_id)
                    assert len(down) <= 2
                elif event.kind == "revive":
                    assert event.shard_id in down
                    down.discard(event.shard_id)

    def test_random_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule.random(0, [])
        with pytest.raises(ValueError):
            FaultSchedule.random(0, [1], max_concurrent_down=0)


class TestFaultPlane:
    def test_dispatch_kill_revive_drop_delay(self):
        server = ParameterServer(
            num_shards=4, row_bytes=None, row_dim=2, replication=3
        )
        store = server.store
        schedule = FaultSchedule(
            [
                FaultEvent(1.0, "kill", 2),
                FaultEvent(2.0, "delay", factor=3.0),
                FaultEvent(3.0, "revive", 2),
                FaultEvent(4.0, "drop_publish", 0),
                FaultEvent(5.0, "delay", factor=1.0),
            ]
        )
        plane = FaultPlane(store, schedule)
        plane.advance_to(1.5)
        assert store.down_shard_ids == [2]
        plane.advance_to(2.5)
        assert plane.delay_factor == 3.0
        plane.advance_to(3.5)
        assert store.down_shard_ids == []
        plane.advance_to(4.5)
        version = store.publish_batch("t", np.arange(50), np.zeros((50, 2)))
        assert store.missed_versions(0) == [version]
        plane.advance_to(5.5)
        assert plane.delay_factor == 1.0
        assert len(plane.injected) == 5

    def test_poll_reads_bound_clock(self):
        store = ParameterServer(num_shards=4, row_dim=2).store
        clock = SimClock()
        plane = FaultPlane(
            store, FaultSchedule([FaultEvent(2.0, "kill", 1)]), clock=clock
        )
        assert plane.poll() == []
        clock.advance(2.5)
        assert [e.kind for e in plane.poll()] == ["kill"]
        assert store.down_shard_ids == [1]

    def test_poll_without_clock_raises(self):
        store = ParameterServer(num_shards=4, row_dim=2).store
        plane = FaultPlane(store, FaultSchedule([]))
        with pytest.raises(ValueError):
            plane.poll()

    def test_delay_factor_slows_client_transfers(self):
        from repro.cluster.shardstore import ShardClient

        store = ParameterServer(num_shards=4, row_dim=2).store
        plane = FaultPlane(
            store, FaultSchedule([FaultEvent(0.0, "delay", factor=4.0)])
        )
        client = ShardClient(store, faults=plane)
        healthy = client.transfer_seconds(10_000)
        plane.advance_to(0.0)
        assert client.transfer_seconds(10_000) == pytest.approx(4.0 * healthy)


@pytest.fixture
def replicated_world():
    table_sizes = (50, 40)
    model = DLRM(
        DLRMConfig(
            num_dense=3,
            embedding_dim=4,
            table_sizes=table_sizes,
            bottom_mlp=(8,),
            top_mlp=(8,),
            seed=0,
        )
    )
    stream = DriftingCTRStream(
        StreamConfig(table_sizes=table_sizes, num_dense=3, seed=1)
    )
    server = ParameterServer(
        num_shards=4, row_bytes=4 * 8, replication=3
    )
    trainer = TrainingCluster(model.copy(), server)
    node = InferenceNode(model.copy(), server)
    return stream, server, trainer, node


class TestFacadeFailureSemantics:
    def test_facade_exposes_failure_surface(self, replicated_world):
        _, server, _, _ = replicated_world
        server.kill_shard(1)
        assert server.store.down_shard_ids == [1]
        server.revive_shard(1)
        report = server.repair()
        assert report.shards_healed == []
        assert server.compact() == 0

    def test_midwindow_kill_surfaces_as_quorum_error(self, replicated_world):
        """Killing a quorum of shards mid-window: the trainer's publish
        raises (typed), the window's rows stay staged, and a retry after
        revival publishes every one of them — zero silent loss."""
        stream, server, trainer, _ = replicated_world
        trainer.train_on(stream.next_batch(32))
        server.kill_shard(0)
        server.kill_shard(1)  # R=3 over 4 shards: some row must lose quorum
        with pytest.raises(QuorumError):
            trainer.publish_changed_rows()
        staged = trainer.client.staged_rows
        assert staged > 0  # the window survived the refusal
        assert server.version == 0
        server.revive_shard(0)
        server.revive_shard(1)
        report = trainer.publish_changed_rows()  # retry the same window
        assert report.rows_pushed == staged
        assert server.version == 1

    def test_staleness_recovers_within_one_window_after_revive(
        self, replicated_world
    ):
        """An inference node refreshed after revive+repair is exactly
        version-current and prediction-consistent with the trainer."""
        stream, server, trainer, node = replicated_world
        # healthy window (dense frozen: the parameter plane only carries
        # embedding rows, so embedding sync must imply prediction sync)
        trainer.train_on(stream.next_batch(32), update_dense=False)
        trainer.publish_changed_rows()
        node.pull_updates()
        assert node.staleness_versions() == 0
        # a replica dies; training continues; publishes still ack (1 < quorum)
        server.kill_shard(2)
        trainer.train_on(stream.next_batch(32), update_dense=False)
        trainer.publish_changed_rows()
        # revive + repair, then ONE sync window
        server.revive_shard(2)
        server.repair()
        assert check_replica_convergence(server.store).converged
        node.pull_updates()
        assert node.staleness_versions() == 0
        # node parameters match the trainer's on every published row
        probe = stream.next_batch(64)
        np.testing.assert_allclose(
            node.predict(probe), trainer.model.predict(
                probe.dense, probe.sparse_ids
            ),
        )


class TestGrayFailureEvents:
    def test_slow_node_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "slow_node", 1, factor=0.5)
        with pytest.raises(ValueError):
            FaultEvent(0.0, "slow_node", factor=2.0)  # needs a shard
        FaultEvent(0.0, "slow_node", 1, factor=1.0)  # 1.0 clears: valid

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "partition", 1)  # zero duration
        with pytest.raises(ValueError):
            FaultEvent(0.0, "partition", 1, duration_s=-1.0)

    def test_flap_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "flap", 1, duration_s=2.0)  # zero period
        with pytest.raises(ValueError):
            FaultEvent(0.0, "flap", 1, period_s=1.0)  # zero duration


class TestGrayFailureDispatch:
    def test_slow_node_sets_and_clears_per_shard_factor(self):
        store = ParameterServer(num_shards=4, row_dim=2).store
        plane = FaultPlane(
            store,
            FaultSchedule(
                [
                    FaultEvent(1.0, "slow_node", 2, factor=8.0),
                    FaultEvent(3.0, "slow_node", 2, factor=1.0),
                ]
            ),
        )
        assert plane.slow_factor(2) == 1.0
        plane.advance_to(1.0)
        assert plane.slow_factor(2) == 8.0
        assert plane.slow_factor(1) == 1.0  # gray failure is per shard
        assert store.down_shard_ids == []  # slow, not dead
        plane.advance_to(3.0)
        assert plane.slow_factor(2) == 1.0

    def test_partition_heals_after_duration(self):
        store = ParameterServer(num_shards=4, row_dim=2).store
        plane = FaultPlane(
            store,
            FaultSchedule(
                [
                    FaultEvent(1.0, "partition", 0, duration_s=2.0),
                    # overlapping shorter partition must not shorten it
                    FaultEvent(2.0, "partition", 0, duration_s=0.5),
                ]
            ),
        )
        assert not plane.is_partitioned(0)
        plane.advance_to(1.0)
        assert plane.is_partitioned(0)
        assert not plane.is_partitioned(1)
        plane.advance_to(2.9)
        assert plane.is_partitioned(0)  # max(3.0, 2.5) still ahead
        plane.advance_to(3.0)
        assert not plane.is_partitioned(0)
        assert store.down_shard_ids == []  # never killed, only unreachable

    def test_flap_expands_to_bounces_ending_revived(self):
        schedule = FaultSchedule(
            [FaultEvent(0.0, "flap", 3, duration_s=2.0, period_s=1.0)]
        )
        assert [e.kind for e in schedule.events] == [
            "kill", "revive", "kill", "revive",
        ]
        assert [e.at_s for e in schedule.events] == [0.0, 0.5, 1.0, 1.5]
        assert all(e.shard_id == 3 for e in schedule.events)

    def test_flap_tail_clamped_to_duration(self):
        schedule = FaultSchedule(
            [FaultEvent(0.0, "flap", 1, duration_s=1.3, period_s=1.0)]
        )
        assert schedule.events[-1].kind == "revive"
        assert schedule.events[-1].at_s == 1.3  # clamped, still revived

    def test_flap_dispatch_leaves_store_healthy(self):
        store = ParameterServer(num_shards=4, row_dim=2).store
        plane = FaultPlane(
            store,
            FaultSchedule(
                [FaultEvent(0.0, "flap", 1, duration_s=2.0, period_s=1.0)]
            ),
        )
        plane.advance_to(0.4)
        assert store.down_shard_ids == [1]  # mid-bounce: down
        plane.advance_to(10.0)
        assert store.down_shard_ids == []
        assert plane.skipped == []
        assert len(plane.injected) == 4


class TestScheduleEdgeCases:
    """Satellite 3 of ISSUE 10: overlap, zero-duration, and tie-break
    semantics of hand-built schedules, pinned for replay determinism."""

    def test_overlapping_kill_revive_of_same_shard_is_tolerant(self):
        store = ParameterServer(num_shards=4, row_dim=2).store
        plane = FaultPlane(
            store,
            FaultSchedule(
                [
                    FaultEvent(1.0, "kill", 2),
                    FaultEvent(2.0, "kill", 2),    # already down
                    FaultEvent(3.0, "revive", 2),
                    FaultEvent(4.0, "revive", 2),  # already up
                ]
            ),
        )
        plane.advance_to(5.0)
        assert store.down_shard_ids == []
        assert [(e.at_s, e.kind) for e in plane.skipped] == [
            (2.0, "kill"), (4.0, "revive"),
        ]
        assert len(plane.injected) == 2  # skips are recorded, not injected

    def test_flap_over_externally_killed_shard_skips_its_kill(self):
        store = ParameterServer(num_shards=4, row_dim=2).store
        store.kill_shard(1)
        plane = FaultPlane(
            store,
            FaultSchedule(
                [FaultEvent(0.0, "flap", 1, duration_s=1.0, period_s=1.0)]
            ),
        )
        plane.advance_to(2.0)
        assert [e.kind for e in plane.skipped] == ["kill"]
        assert store.down_shard_ids == []  # flap still ends it revived

    def test_zero_duration_delay_pair_resolves_by_insertion_order(self):
        store = ParameterServer(num_shards=4, row_dim=2).store
        plane = FaultPlane(
            store,
            FaultSchedule(
                [
                    FaultEvent(2.0, "delay", factor=3.0),
                    FaultEvent(2.0, "delay", factor=1.0),
                ]
            ),
        )
        plane.advance_to(2.0)
        assert plane.delay_factor == 1.0  # later insertion wins the tie
        assert len(plane.injected) == 2  # both fired, neither was dropped

        reversed_plane = FaultPlane(
            ParameterServer(num_shards=4, row_dim=2).store,
            FaultSchedule(
                [
                    FaultEvent(2.0, "delay", factor=1.0),
                    FaultEvent(2.0, "delay", factor=3.0),
                ]
            ),
        )
        reversed_plane.advance_to(2.0)
        assert reversed_plane.delay_factor == 3.0

    def test_identical_timestamps_keep_insertion_order(self):
        schedule = FaultSchedule(
            [
                FaultEvent(5.0, "kill", 1),
                FaultEvent(5.0, "revive", 1),
                FaultEvent(1.0, "drop_publish", 0),
            ]
        )
        # stable sort: t=1 moves first, the t=5 tie keeps insertion order
        assert [(e.at_s, e.kind) for e in schedule.events] == [
            (1.0, "drop_publish"), (5.0, "kill"), (5.0, "revive"),
        ]

    def test_identical_timestamp_dispatch_is_deterministic(self):
        # kill-then-revive at the same instant: a zero-duration outage,
        # shard ends up healthy and nothing is skipped
        store = ParameterServer(num_shards=4, row_dim=2).store
        plane = FaultPlane(
            store,
            FaultSchedule(
                [FaultEvent(5.0, "kill", 1), FaultEvent(5.0, "revive", 1)]
            ),
        )
        plane.advance_to(5.0)
        assert store.down_shard_ids == []
        assert plane.skipped == []
        # revive-then-kill at the same instant: the revive is a no-op
        # skip (shard was up) and the kill lands — order is insertion
        # order, bit-for-bit, never a hash or dict accident
        store2 = ParameterServer(num_shards=4, row_dim=2).store
        plane2 = FaultPlane(
            store2,
            FaultSchedule(
                [FaultEvent(5.0, "revive", 1), FaultEvent(5.0, "kill", 1)]
            ),
        )
        plane2.advance_to(5.0)
        assert store2.down_shard_ids == [1]
        assert [e.kind for e in plane2.skipped] == ["revive"]
