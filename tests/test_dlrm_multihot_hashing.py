"""Tests for multi-hot fields, pooled layers, and feature hashing."""

import numpy as np
import pytest

from repro.core.lora import LoRAAdapter
from repro.data.zipf import ZipfSampler
from repro.dlrm.embedding import EmbeddingTable
from repro.dlrm.hashing import FeatureHasher, HashingConfig, collision_rate
from repro.dlrm.multihot import MultiHotField, PooledFieldLayer


class TestMultiHotField:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiHotField(np.array([1, 2]), np.array([0, 1]))  # bad end
        with pytest.raises(ValueError):
            MultiHotField(np.array([1]), np.array([1, 1]))  # bad start
        with pytest.raises(ValueError):
            MultiHotField(np.array([1, 2]), np.array([0, 2, 1]))  # decreasing

    def test_from_lists(self):
        f = MultiHotField.from_lists([[1, 2], [], [3]])
        assert f.batch_size == 3
        assert f.bag_sizes().tolist() == [2, 0, 1]
        assert f.ids.tolist() == [1, 2, 3]

    def test_sampled_bags(self):
        sampler = ZipfSampler(100, 1.2, rng=np.random.default_rng(0))
        f = MultiHotField.sample(
            sampler, batch_size=16, mean_bag=4.0,
            rng=np.random.default_rng(1),
        )
        assert f.batch_size == 16
        assert (f.bag_sizes() >= 1).all()
        assert f.ids.max() < 100


class TestPooledFieldLayer:
    @pytest.fixture
    def table(self):
        return EmbeddingTable(50, 4, rng=np.random.default_rng(0))

    def test_mode_validated(self, table):
        with pytest.raises(ValueError):
            PooledFieldLayer(table, mode="max")

    def test_mean_pooling_forward(self, table):
        layer = PooledFieldLayer(table, mode="mean")
        f = MultiHotField.from_lists([[1, 2]])
        out = layer.forward(f)
        expected = (table.weight[1] + table.weight[2]) / 2
        np.testing.assert_allclose(out[0], expected)

    def test_backward_finite_difference(self, table):
        layer = PooledFieldLayer(table, mode="mean")
        f = MultiHotField.from_lists([[1, 2, 2], [5]])

        def loss():
            return float((layer.forward(f) ** 2).sum())

        out = layer.forward(f)
        grad = layer.backward(f, 2 * out)
        eps = 1e-6
        for idx in grad.indices:
            j = 0
            row_pos = grad.indices.tolist().index(int(idx))
            table.weight[idx, j] += eps
            lp = loss()
            table.weight[idx, j] -= 2 * eps
            lm = loss()
            table.weight[idx, j] += eps
            assert grad.rows[row_pos, j] == pytest.approx(
                (lp - lm) / (2 * eps), abs=1e-6
            )

    def test_overlay_commutes_with_pooling(self, table):
        layer = PooledFieldLayer(table, mode="mean")
        adapter = LoRAAdapter(dim=4, rank=2, capacity=8, rng=np.random.default_rng(1))
        slot = adapter.activate(1)
        adapter.a[slot] = np.ones(2)
        f = MultiHotField.from_lists([[1, 3]])
        adapted = layer.forward_with_overlay(f, adapter)
        # pool(W + delta) where only id 1 has a delta
        expected = layer.forward(f)[0] + adapter.delta_rows(np.array([1]))[0] / 2
        np.testing.assert_allclose(adapted[0], expected)

    def test_sum_pooling(self, table):
        layer = PooledFieldLayer(table, mode="sum")
        f = MultiHotField.from_lists([[1, 2]])
        np.testing.assert_allclose(
            layer.forward(f)[0], table.weight[1] + table.weight[2]
        )


class TestFeatureHasher:
    def test_slots_in_range(self):
        h = FeatureHasher(HashingConfig(num_slots=100))
        slots = h.hash_ints(np.arange(10_000))
        assert slots.min() >= 0 and slots.max() < 100

    def test_deterministic(self):
        h = FeatureHasher(HashingConfig(num_slots=1000, seed=3))
        a = h.hash_ints(np.arange(100))
        b = h.hash_ints(np.arange(100))
        np.testing.assert_array_equal(a, b)

    def test_seeds_decorrelate_fields(self):
        h1 = FeatureHasher(HashingConfig(num_slots=1000, seed=1))
        h2 = FeatureHasher(HashingConfig(num_slots=1000, seed=2))
        a = h1.hash_ints(np.arange(1000))
        b = h2.hash_ints(np.arange(1000))
        assert (a == b).mean() < 0.01

    def test_distribution_roughly_uniform(self):
        h = FeatureHasher(HashingConfig(num_slots=64))
        counts = np.bincount(h.hash_ints(np.arange(64_000)), minlength=64)
        assert counts.min() > 0.7 * counts.mean()
        assert counts.max() < 1.3 * counts.mean()

    def test_token_hashing(self):
        h = FeatureHasher(HashingConfig(num_slots=1000))
        slots = h.hash_tokens(["user:1", "user:2", "user:1"])
        assert slots[0] == slots[2]
        assert 0 <= slots.min() and slots.max() < 1000

    def test_config_validated(self):
        with pytest.raises(ValueError):
            HashingConfig(num_slots=0)


class TestCollisionRate:
    def test_matches_birthday_expectation(self):
        n, m = 5000, 10_000
        measured = collision_rate(n, m)
        expected = 1 - (1 - 1 / m) ** (n - 1)
        assert measured == pytest.approx(expected, abs=0.05)

    def test_no_collisions_with_huge_table(self):
        assert collision_rate(10, 1_000_000) == pytest.approx(0.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            collision_rate(0, 10)
