"""Tests for the LiveUpdate strategy."""

import numpy as np
import pytest

from repro.cluster.nodes import InferenceNode, TrainingCluster
from repro.cluster.parameter_server import ParameterServer
from repro.core.liveupdate import LiveUpdate, LiveUpdateConfig
from repro.core.trainer import TrainerConfig
from repro.data.synthetic import DriftingCTRStream, StreamConfig
from repro.dlrm.model import DLRM, DLRMConfig

TABLE_SIZES = (80, 60)


@pytest.fixture
def world():
    model = DLRM(
        DLRMConfig(
            num_dense=3,
            embedding_dim=8,
            table_sizes=TABLE_SIZES,
            bottom_mlp=(8,),
            top_mlp=(8,),
            seed=0,
        )
    )
    stream = DriftingCTRStream(
        StreamConfig(table_sizes=TABLE_SIZES, num_dense=3, seed=1)
    )
    server = ParameterServer(row_bytes=64)
    trainer_cluster = TrainingCluster(model.copy(), server)
    node = InferenceNode(model.copy(), server)
    return stream, trainer_cluster, node


def _make(node, trainer_cluster, **cfg):
    return LiveUpdate(
        node,
        trainer_cluster=trainer_cluster,
        trainer_config=TrainerConfig(
            rank=4, dynamic_rank=False, dynamic_prune=False, lr=0.2
        ),
        config=LiveUpdateConfig(**cfg),
    )


class TestProtocol:
    def test_serving_batches_feed_buffer(self, world):
        stream, tc, node = world
        lu = _make(node, tc)
        lu.on_serving_batch(stream.next_batch(32, local=True))
        assert len(lu.buffer) == 32

    def test_update_window_without_data_is_cheap(self, world):
        _, tc, node = world
        lu = _make(node, tc)
        cost = lu.on_update_window(now=300.0)
        assert cost.rows == 0
        assert cost.bytes_moved == 0.0

    def test_update_window_trains_locally(self, world):
        stream, tc, node = world
        lu = _make(node, tc, steps_per_window=5)
        for _ in range(3):
            lu.on_serving_batch(stream.next_batch(64, local=True))
        cost = lu.on_update_window(now=300.0)
        assert cost.kind == "lora-local"
        assert cost.rows == 5 * lu.trainer.config.batch_size
        assert cost.bytes_moved == 0.0  # the headline claim
        assert cost.seconds > 0.0

    def test_on_slot_accumulates_into_window_cost(self, world):
        stream, tc, node = world
        lu = _make(node, tc, steps_per_slot=2, steps_per_window=0)
        for _ in range(3):
            lu.on_serving_batch(stream.next_batch(64, local=True))
        lu.on_slot(now=30.0)
        cost = lu.on_update_window(now=300.0)
        assert cost.seconds > 0.0  # slot compute is accounted

    def test_overlay_applies_after_training(self, world):
        stream, tc, node = world
        lu = _make(node, tc, steps_per_window=10)
        for _ in range(3):
            lu.on_serving_batch(stream.next_batch(64, local=True))
        ev = stream.eval_batch(64)
        before = node.predict(ev, overlay=lu.overlay())
        lu.on_update_window(now=300.0)
        after = node.predict(ev, overlay=lu.overlay())
        assert not np.allclose(before, after)


class TestFullSync:
    def test_adopts_training_cluster_model(self, world):
        stream, tc, node = world
        lu = _make(node, tc, steps_per_window=5)
        for _ in range(5):
            tc.train_on(stream.next_batch(64))
        cost = lu.on_full_sync(now=3600.0)
        assert cost.kind == "full-sync"
        assert cost.bytes_moved == tc.model.embedding_bytes
        np.testing.assert_allclose(
            node.model.embeddings[0].weight, tc.model.embeddings[0].weight
        )

    def test_merge_before_sync_preserves_serving_continuity(self, world):
        stream, tc, node = world
        lu = _make(node, tc, steps_per_window=10, merge_before_full_sync=True)
        for _ in range(3):
            lu.on_serving_batch(stream.next_batch(64, local=True))
        lu.on_update_window(now=300.0)
        lu.on_full_sync(now=3600.0)
        # adapters are reset after the full sync
        assert lu.trainer.lora.num_active == 0

    def test_no_cluster_means_noop_sync(self, world):
        _, _, node = world
        lu = LiveUpdate(node, trainer_cluster=None)
        cost = lu.on_full_sync(now=3600.0)
        assert cost.seconds == 0.0


class TestNaming:
    def test_dynamic_name(self, world):
        _, tc, node = world
        lu = LiveUpdate(node, trainer_cluster=tc)
        assert lu.name == "LiveUpdate"

    def test_fixed_rank_name(self, world):
        _, tc, node = world
        lu = LiveUpdate(
            node,
            trainer_cluster=tc,
            trainer_config=TrainerConfig(rank=6, dynamic_rank=False),
        )
        assert lu.name == "LiveUpdate-6"


class TestMemoryAccounting:
    def test_adapter_memory_fraction(self, world):
        _, tc, node = world
        lu = _make(node, tc)
        frac = lu.adapter_memory_fraction()
        assert 0 < frac < 1
        assert lu.adapter_memory_bytes() == lu.trainer.memory_bytes()
