"""Fleet-level integration: routing, versioning, consistency, local LoRA.

Simulates a small production fleet end-to-end: a consistent-hash router
shards traffic across inference nodes, each node runs a LiveUpdate trainer
on its shard, the version manager gates an hourly full sync, and the
consistency checker verifies the fleet before/after.
"""

import numpy as np
import pytest

from repro.cluster import (
    InferenceNode,
    ModelVersionManager,
    ParameterServer,
    TrainingCluster,
    check_prediction_consistency,
)
from repro.core import LiveUpdate, LiveUpdateConfig, TrainerConfig
from repro.data import DriftingCTRStream, StreamConfig
from repro.dlrm import DLRM, DLRMConfig, auc_roc
from repro.serving import ConsistentHashRouter

TABLE_SIZES = (600, 400)
NUM_NODES = 3


@pytest.fixture(scope="module")
def fleet_world():
    stream = DriftingCTRStream(
        StreamConfig(table_sizes=TABLE_SIZES, num_dense=4, seed=5)
    )
    model = DLRM(
        DLRMConfig(
            num_dense=4,
            embedding_dim=16,
            table_sizes=TABLE_SIZES,
            bottom_mlp=(16,),
            top_mlp=(32,),
            seed=0,
        )
    )
    server = ParameterServer(row_bytes=128)
    cluster = TrainingCluster(model.copy(), server)
    # warm the Day-1 checkpoint
    for _ in range(150):
        batch = stream.next_batch(256, duration_s=1.0)
        cluster.train_on(batch)
    nodes = [
        InferenceNode(cluster.model.copy(), server, node_id=i)
        for i in range(NUM_NODES)
    ]
    lives = [
        LiveUpdate(
            node,
            trainer_cluster=cluster,
            trainer_config=TrainerConfig(
                rank=6, lr=0.25, dynamic_rank=False, seed=i
            ),
            config=LiveUpdateConfig(steps_per_slot=3),
        )
        for i, node in enumerate(nodes)
    ]
    router = ConsistentHashRouter(list(range(NUM_NODES)), seed=2)
    manager = ModelVersionManager(gate_tolerance=0.05)

    rng = np.random.default_rng(9)
    # --- serve 20 simulated minutes of routed traffic -------------------
    for slot in range(40):
        cluster.train_on(stream.next_batch(128))
        batch = stream.next_batch(384, local=True)
        users = rng.integers(0, 1 << 31, batch.size)
        assignment = router.route(users)
        for node_id in range(NUM_NODES):
            mask = assignment == node_id
            if not mask.any():
                continue
            from repro.data import Batch

            shard = Batch(
                timestamp=batch.timestamp,
                dense=batch.dense[mask],
                sparse_ids=batch.sparse_ids[mask],
                labels=batch.labels[mask],
            )
            nodes[node_id].predict(shard, overlay=lives[node_id].overlay())
            lives[node_id].on_serving_batch(shard)
            lives[node_id].on_slot(now=stream.now)
        stream.advance(30.0)
        router.reset_window()
    return stream, cluster, nodes, lives, router, manager


class TestFleetServing:
    def test_every_node_received_traffic(self, fleet_world):
        _, _, _, lives, _, _ = fleet_world
        for live in lives:
            assert len(live.buffer) > 0
            assert live.trainer.report.steps > 0

    def test_local_adaptation_beats_stale_base(self, fleet_world):
        stream, _, nodes, lives, _, _ = fleet_world
        ev = stream.eval_batch(4000, local=True)
        for node, live in zip(nodes, lives):
            base = auc_roc(ev.labels, node.predict(ev))
            adapted = auc_roc(ev.labels, node.predict(ev, overlay=live.overlay()))
            assert adapted > base - 0.005  # adaptation never catastrophically hurts
        mean_base = np.mean(
            [auc_roc(ev.labels, n.predict(ev)) for n in nodes]
        )
        mean_adapted = np.mean(
            [
                auc_roc(ev.labels, n.predict(ev, overlay=l.overlay()))
                for n, l in zip(nodes, lives)
            ]
        )
        assert mean_adapted > mean_base

    def test_base_parameters_stay_consistent(self, fleet_world):
        """Local adaptation must not touch base replicas (they stay identical)."""
        stream, _, nodes, _, _, _ = fleet_world
        probe = stream.eval_batch(128)
        report = check_prediction_consistency([n.model for n in nodes], probe)
        assert report.consistent

    def test_gated_full_sync_restores_fleet(self, fleet_world):
        stream, cluster, nodes, lives, _, manager = fleet_world
        record = manager.register(cluster.model, now=stream.now)
        probe = stream.eval_batch(2000)
        result = manager.promote_if_healthy(
            record.version, [n.model for n in nodes], probe
        )
        if result.passed:
            report = check_prediction_consistency(
                [n.model for n in nodes], stream.eval_batch(128)
            )
            assert report.consistent
            assert manager.serving_version == record.version
        else:
            # gate refused: fleet must be untouched and still consistent
            report = check_prediction_consistency(
                [n.model for n in nodes], stream.eval_batch(128)
            )
            assert report.consistent

    def test_router_balanced_the_shard_load(self, fleet_world):
        _, _, _, lives, router, _ = fleet_world
        sizes = [len(l.buffer) + l.buffer.total_evicted for l in lives]
        assert max(sizes) < 2.5 * min(sizes)
        assert router.stats.routed > 0
