"""Tests for the dense MLP including finite-difference gradient checks."""

import numpy as np
import pytest

from repro.dlrm.mlp import MLP


def _loss(mlp, x):
    return float((mlp(x) ** 2).sum())


class TestMLPForward:
    def test_needs_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_output_shape(self):
        mlp = MLP([4, 8, 2], rng=np.random.default_rng(0))
        out = mlp(np.zeros((5, 4)))
        assert out.shape == (5, 2)

    def test_final_relu_nonnegative(self):
        mlp = MLP([4, 8, 3], rng=np.random.default_rng(0), final_relu=True)
        out = mlp(np.random.default_rng(1).normal(size=(20, 4)))
        assert (out >= 0).all()

    def test_linear_output_can_be_negative(self):
        mlp = MLP([4, 8, 3], rng=np.random.default_rng(0))
        out = mlp(np.random.default_rng(1).normal(size=(50, 4)))
        assert (out < 0).any()

    def test_num_params(self):
        mlp = MLP([4, 8, 2])
        assert mlp.num_params == 4 * 8 + 8 + 8 * 2 + 2


class TestMLPBackward:
    @pytest.mark.parametrize("final_relu", [False, True])
    def test_weight_gradients_match_finite_difference(self, final_relu):
        rng = np.random.default_rng(3)
        mlp = MLP([3, 6, 2], rng=rng, final_relu=final_relu)
        x = rng.normal(size=(4, 3))
        out, cache = mlp.forward(x)
        _, grads = mlp.backward(cache, 2 * out)  # d(sum out^2)/dout
        eps = 1e-6
        for layer in range(mlp.num_layers):
            w = mlp.weights[layer]
            i, j = 0, 0
            w[i, j] += eps
            lp = _loss(mlp, x)
            w[i, j] -= 2 * eps
            lm = _loss(mlp, x)
            w[i, j] += eps
            fd = (lp - lm) / (2 * eps)
            assert grads.weights[layer][i, j] == pytest.approx(fd, abs=1e-5)

    def test_bias_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(4)
        mlp = MLP([3, 5, 1], rng=rng)
        x = rng.normal(size=(6, 3))
        out, cache = mlp.forward(x)
        _, grads = mlp.backward(cache, 2 * out)
        eps = 1e-6
        mlp.biases[0][2] += eps
        lp = _loss(mlp, x)
        mlp.biases[0][2] -= 2 * eps
        lm = _loss(mlp, x)
        mlp.biases[0][2] += eps
        assert grads.biases[0][2] == pytest.approx((lp - lm) / (2 * eps), abs=1e-5)

    def test_input_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(5)
        mlp = MLP([3, 4, 2], rng=rng)
        x = rng.normal(size=(2, 3))
        out, cache = mlp.forward(x)
        grad_x, _ = mlp.backward(cache, 2 * out)
        eps = 1e-6
        x2 = x.copy()
        x2[1, 0] += eps
        lp = _loss(mlp, x2)
        x2[1, 0] -= 2 * eps
        lm = _loss(mlp, x2)
        assert grad_x[1, 0] == pytest.approx((lp - lm) / (2 * eps), abs=1e-5)

    def test_apply_grads_decreases_loss(self):
        rng = np.random.default_rng(6)
        mlp = MLP([3, 8, 1], rng=rng)
        x = rng.normal(size=(16, 3))
        for _ in range(5):
            out, cache = mlp.forward(x)
            before = float((out ** 2).sum())
            _, grads = mlp.backward(cache, 2 * out)
            mlp.apply_grads(grads, lr=0.01)
        after = float((mlp(x) ** 2).sum())
        assert after < before

    def test_copy_independent(self):
        mlp = MLP([2, 3, 1])
        dup = mlp.copy()
        dup.weights[0][0, 0] += 5.0
        assert mlp.weights[0][0, 0] != dup.weights[0][0, 0]


class TestDenseGrads:
    def test_scaled_and_norm(self):
        mlp = MLP([2, 2], rng=np.random.default_rng(0))
        x = np.ones((1, 2))
        out, cache = mlp.forward(x)
        _, grads = mlp.backward(cache, np.ones_like(out))
        doubled = grads.scaled(2.0)
        assert doubled.global_norm() == pytest.approx(2 * grads.global_norm())
