"""Tests for the sharded parameter-plane subsystem (placement + store)."""

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.cluster.shardstore import (
    ShardedParameterStore,
    ShardPlacement,
    stable_table_hash,
)


@pytest.fixture
def store():
    return ShardedParameterStore(num_shards=4, row_bytes=32, row_dim=4)


def _subprocess_output(snippet: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    return subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True, text=True, env=env, check=True,
    ).stdout.strip()


class TestPlacement:
    def test_table_hash_stable_and_distinct(self):
        assert stable_table_hash("table_0") == stable_table_hash("table_0")
        assert stable_table_hash("table_0") != stable_table_hash("table_1")
        assert stable_table_hash("ab") != stable_table_hash("ba")
        stable_table_hash("")  # empty name must not crash

    def test_shard_of_is_vectorized_and_consistent_with_scalar(self):
        p = ShardPlacement(list(range(8)))
        ids = np.arange(100)
        batch = p.shard_of("t", ids)
        singles = [int(p.shard_of("t", np.array([i]))[0]) for i in ids]
        assert batch.tolist() == singles

    def test_tables_are_placed_independently(self):
        p = ShardPlacement(list(range(8)))
        ids = np.arange(2000)
        a = p.shard_of("a", ids)
        b = p.shard_of("b", ids)
        assert (a != b).any()

    def test_add_shard_remaps_small_fraction(self):
        p = ShardPlacement(list(range(8)), virtual_nodes=128)
        grown = p.with_shard_added(8)
        frac = p.remap_fraction(grown, "t", np.arange(50_000))
        # ideal is 1/9; allow slack for a small ring
        assert 0.0 < frac < 0.3

    def test_membership_validation(self):
        p = ShardPlacement([0, 1])
        with pytest.raises(ValueError):
            p.with_shard_added(1)
        with pytest.raises(ValueError):
            p.with_shard_removed(5)
        with pytest.raises(ValueError):
            ShardPlacement([3]).with_shard_removed(3)

    @pytest.mark.parametrize("hash_seed", ["0", "42"])
    def test_placement_identical_across_processes(self, hash_seed):
        """Shard assignment is byte-identical under different PYTHONHASHSEED."""
        snippet = (
            "import numpy as np;"
            "from repro.cluster.shardstore import ShardPlacement;"
            "p = ShardPlacement(list(range(8)), virtual_nodes=64, seed=0);"
            "print(p.shard_of('table_0', np.arange(500)).tolist())"
        )
        out = _subprocess_output(snippet, hash_seed)
        here = ShardPlacement(list(range(8)), virtual_nodes=64, seed=0)
        assert out == str(here.shard_of("table_0", np.arange(500)).tolist())


class TestPublishPull:
    def test_publish_bumps_version_and_counts(self, store):
        v1 = store.publish_batch("t", np.array([0, 1]), np.zeros((2, 4)))
        v2 = store.publish_batch("t", np.array([2]), np.zeros((1, 4)))
        assert (v1, v2) == (1, 2)
        assert len(store) == 3
        assert store.total_bytes == 3 * 32

    def test_length_mismatch_raises(self, store):
        with pytest.raises(ValueError):
            store.publish_batch("t", np.array([0]), np.zeros((2, 4)))

    def test_failed_publish_does_not_bump_version(self, store):
        with pytest.raises(ValueError):
            store.publish_batch("t", np.array([0]), np.zeros((2, 4)))
        assert store.version == 0

    def test_publish_many_validates_all_batches_before_writing(self, store):
        with pytest.raises(ValueError):
            store.publish_many(
                [
                    ("a", np.array([0]), np.zeros((1, 4))),
                    ("b", np.array([0]), np.zeros((9, 4))),  # malformed
                ]
            )
        assert store.version == 0
        assert len(store) == 0  # batch 'a' did not half-apply

    def test_width_grows_and_zero_pads(self, store):
        """A wider batch re-widens the table; narrower batches zero-pad.

        This is the dynamic-rank LoRA case: the synchronizer's merged row
        width tracks max(rank) across trainers, which moves between rounds.
        """
        store.publish_batch("t", np.arange(6), np.ones((6, 4)))
        store.publish_batch("t", np.array([1]), np.full((1, 6), 2.0))
        assert store.dim_of("t") == 6
        mask, rows = store.pull_rows("t", np.array([0, 1]))
        assert mask.all() and rows.shape == (2, 6)
        np.testing.assert_array_equal(rows[0], [1, 1, 1, 1, 0, 0])
        np.testing.assert_array_equal(rows[1], np.full(6, 2.0))
        store.publish_batch("t", np.array([2]), np.full((1, 3), 5.0))
        _, rows = store.pull_rows("t", np.array([2]))
        np.testing.assert_array_equal(rows[0], [5, 5, 5, 0, 0, 0])
        idx, delta_rows, _ = store.pull_delta("t", 0)
        assert delta_rows.shape == (6, 6)

    def test_duplicate_ids_in_one_batch_last_wins(self, store):
        rows = np.arange(12, dtype=float).reshape(3, 4)
        store.publish_batch("t", np.array([5, 7, 5]), rows)
        assert len(store) == 2
        mask, out = store.pull_rows("t", np.array([5, 7]))
        assert mask.all()
        np.testing.assert_array_equal(out[0], rows[2])  # last occurrence
        np.testing.assert_array_equal(out[1], rows[1])

    def test_pull_rows_gather_and_miss(self, store):
        store.publish_batch("t", np.array([3]), np.full((1, 4), 7.0))
        mask, rows = store.pull_rows("t", np.array([3, 9]))
        assert mask.tolist() == [True, False]
        np.testing.assert_array_equal(rows[0], np.full(4, 7.0))
        np.testing.assert_array_equal(rows[1], np.zeros(4))

    def test_pull_rows_unknown_table_uses_pinned_dim(self, store):
        mask, rows = store.pull_rows("never", np.array([1, 2]))
        assert not mask.any()
        assert rows.shape == (2, 4)  # row_dim pinned at construction

    def test_dim_pinned_at_first_publish(self):
        s = ShardedParameterStore(num_shards=2, row_bytes=16)
        assert s.dim_of("t") == 1
        s.publish_batch("t", np.array([0]), np.zeros((1, 6)))
        assert s.dim_of("t") == 6
        idx, rows, _ = s.pull_delta("t", 99)  # empty, but correctly shaped
        assert rows.shape == (0, 6)

    def test_published_rows_are_copies(self, store):
        rows = np.zeros((1, 4))
        store.publish_batch("t", np.array([0]), rows)
        rows += 99.0
        _, pulled = store.pull_rows("t", np.array([0]))
        np.testing.assert_array_equal(pulled[0], np.zeros(4))

    def test_write_stats_accumulate_across_shards(self, store):
        store.publish_batch("t", np.arange(64), np.zeros((64, 4)))
        assert sum(s.rows_written for s in store.shard_stats) == 64
        assert sum(s.bytes_written for s in store.shard_stats) == 64 * 32
        # keys actually spread over multiple shards
        assert sum(1 for s in store.shard_stats if s.rows_written) > 1


class TestDeltaProtocol:
    def test_empty_delta(self, store):
        idx, rows, v = store.pull_delta("t", since_version=store.version)
        assert idx.size == 0
        assert rows.shape == (0, 4)
        assert v == store.version

    def test_delta_since_version(self, store):
        store.publish_batch("t", np.array([0]), np.zeros((1, 4)))
        v = store.version
        store.publish_batch("t", np.array([1, 2]), np.ones((2, 4)))
        idx, rows, now = store.pull_delta("t", since_version=v)
        assert idx.tolist() == [1, 2]
        assert now == store.version

    def test_republish_same_indices_in_one_version(self, store):
        """Re-publishing an id twice in one batch yields ONE delta entry."""
        store.publish_batch(
            "t", np.array([4, 4]), np.stack([np.ones(4), np.full(4, 2.0)])
        )
        idx, rows, _ = store.pull_delta("t", 0)
        assert idx.tolist() == [4]
        np.testing.assert_array_equal(rows[0], np.full(4, 2.0))

    def test_rewrite_advances_row_version(self, store):
        store.publish_batch("t", np.array([0]), np.zeros((1, 4)))
        v = store.version
        store.publish_batch("t", np.array([0]), np.ones((1, 4)))
        idx, rows, _ = store.pull_delta("t", since_version=v)
        assert idx.tolist() == [0]
        np.testing.assert_array_equal(rows[0], np.ones(4))

    def test_interleaved_tables_are_namespaced(self, store):
        store.publish_batch("a", np.array([0]), np.zeros((1, 4)))
        store.publish_batch("b", np.array([1]), np.ones((1, 4)))
        store.publish_batch("a", np.array([2]), np.full((1, 4), 2.0))
        idx_a, _, _ = store.pull_delta("a", 0)
        idx_b, _, _ = store.pull_delta("b", 0)
        assert idx_a.tolist() == [0, 2]
        assert idx_b.tolist() == [1]
        idx_none, _, _ = store.pull_delta("c", 0)
        assert idx_none.size == 0

    def test_since_version_in_the_future(self, store):
        store.publish_batch("t", np.arange(10), np.zeros((10, 4)))
        idx, rows, v = store.pull_delta("t", since_version=store.version + 50)
        assert idx.size == 0
        assert v == store.version

    def test_delta_volume_matches_pull(self, store):
        store.publish_batch("t", np.arange(6), np.zeros((6, 4)))
        assert store.delta_volume_bytes("t", 0) == 6 * 32
        per_shard = store.delta_shard_volumes("t", 0)
        assert sum(per_shard.values()) == 6 * 32

    def test_publish_many_is_one_version(self, store):
        v = store.publish_many(
            [
                ("a", np.array([0]), np.zeros((1, 4))),
                ("b", np.array([1]), np.ones((1, 4))),
            ]
        )
        assert v == store.version == 1
        idx_a, _, _ = store.pull_delta("a", 0)
        idx_b, _, _ = store.pull_delta("b", 0)
        assert idx_a.tolist() == [0] and idx_b.tolist() == [1]

    def test_compaction_preserves_delta_semantics(self, store):
        rng = np.random.default_rng(0)
        for _ in range(20):
            ids = rng.integers(0, 50, size=16)
            store.publish_batch("t", ids, rng.normal(size=(16, 4)))
        mid = 10
        before = store.pull_delta("t", mid)
        dropped = store.compact()
        assert dropped > 0
        after = store.pull_delta("t", mid)
        np.testing.assert_array_equal(before[0], after[0])
        np.testing.assert_array_equal(before[1], after[1])

    @pytest.mark.parametrize("hash_seed", ["0", "42"])
    def test_store_state_identical_across_processes(self, hash_seed):
        """Per-shard residency is byte-identical under different PYTHONHASHSEED."""
        snippet = (
            "import numpy as np;"
            "from repro.cluster.shardstore import ShardedParameterStore;"
            "s = ShardedParameterStore(num_shards=8, row_bytes=8, row_dim=1);"
            "s.publish_batch('t', np.arange(1000), np.zeros((1000, 1)));"
            "print([sorted(sh.resident_ids('t').tolist()) "
            "for sh in s.shards.values()])"
        )
        out = _subprocess_output(snippet, hash_seed)
        here = ShardedParameterStore(num_shards=8, row_bytes=8, row_dim=1)
        here.publish_batch("t", np.arange(1000), np.zeros((1000, 1)))
        local = [
            sorted(sh.resident_ids("t").tolist()) for sh in here.shards.values()
        ]
        assert out == str(local)


class TestRebalance:
    def _filled(self, rows=5000):
        store = ShardedParameterStore(num_shards=4, row_bytes=16, row_dim=2)
        rng = np.random.default_rng(1)
        store.publish_batch("t", np.arange(rows), rng.normal(size=(rows, 2)))
        store.publish_batch("u", np.arange(rows // 2), rng.normal(size=(rows // 2, 2)))
        return store

    def test_add_shard_moves_only_owned_ranges(self):
        store = self._filled()
        before_idx, before_rows, _ = store.pull_delta("t", 0)
        report = store.add_shard()
        assert store.num_shards == 5
        assert 0.0 < report.moved_fraction < 0.45
        after_idx, after_rows, _ = store.pull_delta("t", 0)
        np.testing.assert_array_equal(before_idx, after_idx)
        np.testing.assert_allclose(before_rows, after_rows)

    def test_rebalance_matches_placement_remap_analysis(self):
        store = self._filled()
        old = store.placement
        new = old.with_shard_added(4)
        ids = np.arange(5000)
        predicted = old.remap_fraction(new, "t", ids)
        moved = (old.shard_of("t", ids) != new.shard_of("t", ids)).mean()
        assert abs(predicted - moved) < 1e-12

    def test_remove_shard_drains_and_preserves_rows(self):
        store = self._filled()
        victim = store.shard_ids[0]
        mask_before, rows_before = store.pull_rows("t", np.arange(100))
        store.remove_shard(victim)
        assert victim not in store.shards
        mask_after, rows_after = store.pull_rows("t", np.arange(100))
        np.testing.assert_array_equal(mask_before, mask_after)
        np.testing.assert_allclose(rows_before, rows_after)

    def test_delta_versions_survive_migration(self):
        store = ShardedParameterStore(num_shards=2, row_bytes=8, row_dim=1)
        store.publish_batch("t", np.arange(100), np.zeros((100, 1)))
        v1 = store.version
        store.publish_batch("t", np.arange(50), np.ones((50, 1)))
        store.add_shard()
        idx, rows, _ = store.pull_delta("t", v1)
        assert idx.tolist() == list(range(50))
        np.testing.assert_array_equal(rows, np.ones((50, 1)))

    def test_remove_unknown_shard_raises(self):
        with pytest.raises(ValueError):
            ShardedParameterStore(num_shards=2).remove_shard(99)


class TestGrowth:
    def test_blocks_grow_past_initial_capacity(self):
        store = ShardedParameterStore(num_shards=1, row_bytes=8, row_dim=1)
        ids = np.arange(1000)
        store.publish_batch("t", ids, np.arange(1000, dtype=float)[:, None])
        mask, rows = store.pull_rows("t", ids)
        assert mask.all()
        np.testing.assert_array_equal(rows[:, 0], np.arange(1000, dtype=float))
