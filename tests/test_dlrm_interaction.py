"""Tests for the dot-product interaction layer."""

import numpy as np
import pytest

from repro.dlrm.interaction import DotInteraction


class TestForward:
    def test_needs_two_features(self):
        with pytest.raises(ValueError):
            DotInteraction(1, 4)

    def test_output_dim(self):
        inter = DotInteraction(4, 8)
        assert inter.output_dim == 8 + 6  # d + C(4,2)

    def test_pair_values_are_dot_products(self):
        inter = DotInteraction(3, 2)
        dense = np.array([[1.0, 0.0]])
        e1 = np.array([[0.0, 1.0]])
        e2 = np.array([[2.0, 2.0]])
        out, _ = inter.forward(dense, [e1, e2])
        # passthrough
        np.testing.assert_array_equal(out[0, :2], dense[0])
        # pairs in (0,1), (0,2), (1,2) order
        assert out[0, 2] == pytest.approx(0.0)  # dense . e1
        assert out[0, 3] == pytest.approx(2.0)  # dense . e2
        assert out[0, 4] == pytest.approx(2.0)  # e1 . e2

    def test_wrong_feature_count_raises(self):
        inter = DotInteraction(3, 2)
        with pytest.raises(ValueError):
            inter.forward(np.zeros((1, 2)), [np.zeros((1, 2))] * 3)


class TestBackward:
    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        inter = DotInteraction(3, 4)
        dense = rng.normal(size=(2, 4))
        embs = [rng.normal(size=(2, 4)) for _ in range(2)]

        def loss(d, es):
            out, _ = inter.forward(d, es)
            return float((out ** 2).sum())

        out, stacked = inter.forward(dense, embs)
        grad_dense, grad_embs = inter.backward(stacked, 2 * out)
        eps = 1e-6

        d2 = dense.copy()
        d2[0, 1] += eps
        lp = loss(d2, embs)
        d2[0, 1] -= 2 * eps
        lm = loss(d2, embs)
        assert grad_dense[0, 1] == pytest.approx((lp - lm) / (2 * eps), abs=1e-5)

        e2 = [e.copy() for e in embs]
        e2[1][1, 2] += eps
        lp = loss(dense, e2)
        e2[1][1, 2] -= 2 * eps
        lm = loss(dense, e2)
        assert grad_embs[1][1, 2] == pytest.approx(
            (lp - lm) / (2 * eps), abs=1e-5
        )

    def test_backward_shapes(self):
        inter = DotInteraction(4, 8)
        rng = np.random.default_rng(1)
        dense = rng.normal(size=(3, 8))
        embs = [rng.normal(size=(3, 8)) for _ in range(3)]
        out, stacked = inter.forward(dense, embs)
        grad_dense, grad_embs = inter.backward(stacked, np.ones_like(out))
        assert grad_dense.shape == (3, 8)
        assert len(grad_embs) == 3
        assert all(g.shape == (3, 8) for g in grad_embs)


class TestScratchReuse:
    """The layer reuses per-batch scratch; results must not depend on it."""

    def test_results_stable_across_batch_size_changes(self):
        rng = np.random.default_rng(7)
        warm = DotInteraction(5, 4)
        for batch in (6, 3, 6, 8, 3):
            dense = rng.normal(size=(batch, 4))
            embs = [rng.normal(size=(batch, 4)) for _ in range(4)]
            grad = rng.normal(size=(batch, warm.output_dim))

            fresh = DotInteraction(5, 4)
            out_w, st_w = warm.forward(dense, embs)
            out_f, st_f = fresh.forward(dense, embs)
            np.testing.assert_array_equal(out_w, out_f)

            gd_w, ge_w = warm.backward(st_w, grad)
            gd_f, ge_f = fresh.backward(st_f, grad)
            np.testing.assert_array_equal(gd_w, gd_f)
            for a, b in zip(ge_w, ge_f):
                np.testing.assert_array_equal(a, b)

    def test_outputs_do_not_alias_scratch(self):
        rng = np.random.default_rng(8)
        inter = DotInteraction(4, 3)
        dense = rng.normal(size=(2, 3))
        embs = [rng.normal(size=(2, 3)) for _ in range(3)]
        out1, st1 = inter.forward(dense, embs)
        snapshot = out1.copy()
        # A second step over fresh inputs must not disturb earlier outputs.
        inter.forward(rng.normal(size=(2, 3)), [rng.normal(size=(2, 3))] * 3)
        np.testing.assert_array_equal(out1, snapshot)
