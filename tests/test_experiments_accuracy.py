"""Tests for the accuracy-timeline harness (scaled down for speed)."""

import numpy as np
import pytest

from repro.experiments.accuracy import (
    AccuracyConfig,
    auc_improvement_table,
    build_pretrained_world,
    run_comparison,
    run_strategy,
)
from repro.experiments.factories import (
    delta_update,
    live_update,
    no_update,
    quick_update,
)

FAST = AccuracyConfig(
    table_sizes=(400, 300),
    num_dense=3,
    horizon_s=600.0,
    slot_s=30.0,
    update_interval_s=300.0,
    pretrain_steps=80,
    train_batch=128,
    serve_batch=256,
)


class TestWorldBuilding:
    def test_pretrained_world_learns_something(self):
        stream, model = build_pretrained_world(FAST)
        from repro.dlrm.metrics import auc_roc

        ev = stream.eval_batch(3000)
        auc = auc_roc(ev.labels, model.predict(ev.dense, ev.sparse_ids))
        assert auc > 0.55

    def test_touch_log_reset_after_pretraining(self):
        _, model = build_pretrained_world(FAST)
        assert model.embeddings.touched_fraction() == 0.0

    def test_worlds_are_reproducible(self):
        s1, m1 = build_pretrained_world(FAST)
        s2, m2 = build_pretrained_world(FAST)
        np.testing.assert_array_equal(
            m1.embeddings[0].weight, m2.embeddings[0].weight
        )


class TestRunStrategy:
    def test_timeline_covers_horizon(self):
        run = run_strategy(FAST, no_update)
        assert len(run.timeline) == 20  # 600 / 30
        assert run.timeline[-1].time_s == 600.0

    def test_mean_auc_reasonable(self):
        run = run_strategy(FAST, delta_update)
        assert 0.5 < run.mean_auc < 1.0

    def test_delta_moves_bytes_noupdate_does_not(self):
        delta = run_strategy(FAST, delta_update)
        none = run_strategy(FAST, no_update)
        assert delta.bytes_moved > 0
        assert none.bytes_moved == 0.0

    def test_liveupdate_moves_no_bytes(self):
        live = run_strategy(FAST, live_update(rank=4, steps_per_slot=2))
        assert live.bytes_moved == 0.0
        assert live.update_seconds > 0.0

    def test_mean_auc_after(self):
        run = run_strategy(FAST, no_update)
        assert not np.isnan(run.mean_auc_after(300.0))


class TestComparison:
    @pytest.fixture(scope="class")
    def runs(self):
        cfg = AccuracyConfig(
            table_sizes=(400, 300),
            num_dense=3,
            horizon_s=1200.0,
            slot_s=30.0,
            update_interval_s=300.0,
            pretrain_steps=120,
            train_batch=128,
            serve_batch=256,
        )
        return run_comparison(
            cfg,
            {
                "DeltaUpdate": delta_update,
                "NoUpdate": no_update,
                "QuickUpdate-5%": quick_update(0.05),
                "LiveUpdate": live_update(rank=4, steps_per_slot=4),
            },
        )

    def test_identical_eval_sequences(self, runs):
        """All strategies must see the same evaluation timeline."""
        times = {
            name: [p.time_s for p in run.timeline] for name, run in runs.items()
        }
        first = next(iter(times.values()))
        assert all(t == first for t in times.values())

    def test_noupdate_is_worst(self, runs):
        assert runs["NoUpdate"].mean_auc <= min(
            runs["DeltaUpdate"].mean_auc, runs["LiveUpdate"].mean_auc
        )

    def test_improvement_table_baseline_zero(self, runs):
        table = auc_improvement_table(runs)
        assert table["DeltaUpdate"] == 0.0
        assert table["NoUpdate"] < 0

    def test_improvement_table_missing_baseline(self, runs):
        with pytest.raises(KeyError):
            auc_improvement_table(runs, baseline="Nope")
