"""Documentation cannot rot: doctest the docs, import the examples.

Mirrors the CI ``docs`` job locally so a stale code block in ``README.md``
or ``docs/*.md`` (or an example that no longer imports) fails tier-1, not
just the separate workflow.
"""

import doctest
import importlib.util
import pathlib
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent

DOC_FILES = [
    REPO / "README.md",
    REPO / "docs" / "architecture.md",
    REPO / "docs" / "benchmarks.md",
    REPO / "docs" / "lint.md",
    REPO / "docs" / "observability.md",
    REPO / "docs" / "replication.md",
]


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_code_blocks_execute(path):
    assert path.exists(), f"missing documentation file {path}"
    result = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.ELLIPSIS,
        verbose=False,
    )
    assert result.attempted > 0, f"{path.name} has no executable examples"
    assert result.failed == 0


@pytest.mark.parametrize(
    "path",
    sorted((REPO / "examples").glob("*.py")),
    ids=lambda p: p.name,
)
def test_examples_import(path):
    """Module-level code of every example must execute cleanly."""
    name = f"_example_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    assert hasattr(module, "main"), f"{path.name} should expose main()"
