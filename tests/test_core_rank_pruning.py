"""Tests for PCA rank adaptation (Eq. 2) and usage-based pruning (Alg. 1)."""

import numpy as np
import pytest

from repro.core.pruning import UsageTracker, dynamic_tau_from_counts
from repro.core.rank_adaptation import (
    RankMonitor,
    approximation_error,
    cumulative_variance,
    lowrank_approximation,
    rank_for_variance,
)


def _lowrank_matrix(n, d, rank, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(n, rank)) @ rng.normal(size=(rank, d))
    if noise:
        m = m + noise * rng.normal(size=(n, d))
    return m


class TestCumulativeVariance:
    def test_monotone_to_one(self):
        cum = cumulative_variance(_lowrank_matrix(50, 16, 4, noise=0.1))
        assert np.all(np.diff(cum) >= -1e-12)
        assert cum[-1] == pytest.approx(1.0)

    def test_exact_lowrank_saturates_at_rank(self):
        cum = cumulative_variance(_lowrank_matrix(50, 16, 3))
        assert cum[2] == pytest.approx(1.0, abs=1e-9)

    def test_zero_matrix(self):
        cum = cumulative_variance(np.zeros((5, 4)))
        assert (cum == 1.0).all()

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            cumulative_variance(np.zeros(5))


class TestRankForVariance:
    def test_exact_rank_recovered(self):
        m = _lowrank_matrix(100, 16, 3)
        assert rank_for_variance(m, alpha=0.99) == 3

    def test_alpha_monotone(self):
        m = _lowrank_matrix(100, 16, 8, noise=0.2)
        r80 = rank_for_variance(m, 0.8)
        r95 = rank_for_variance(m, 0.95)
        assert r80 <= r95

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            rank_for_variance(np.ones((2, 2)), alpha=0.0)

    def test_empty_matrix_rank_one(self):
        assert rank_for_variance(np.zeros((0, 4))) == 1


class TestLowrankApproximation:
    def test_factors_reconstruct(self):
        m = _lowrank_matrix(30, 8, 2)
        a, b = lowrank_approximation(m, 2)
        np.testing.assert_allclose(a @ b, m, atol=1e-8)

    def test_eckart_young_error(self):
        m = _lowrank_matrix(30, 8, 5, noise=0.3)
        err = approximation_error(m, 3)
        a, b = lowrank_approximation(m, 3)
        direct = np.linalg.norm(m - a @ b) / np.linalg.norm(m)
        assert err == pytest.approx(direct, rel=1e-6)

    def test_full_rank_zero_error(self):
        m = _lowrank_matrix(10, 4, 4)
        assert approximation_error(m, 4) == pytest.approx(0.0, abs=1e-9)

    def test_rank_validated(self):
        with pytest.raises(ValueError):
            lowrank_approximation(np.ones((2, 2)), 0)


class TestRankMonitor:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            RankMonitor(alpha=0.0)
        with pytest.raises(ValueError):
            RankMonitor(min_rank=5, max_rank=2)

    def test_fallback_when_unobserved(self):
        m = RankMonitor(min_rank=2, max_rank=32)
        assert m.recommended_rank(fallback=8) == 8

    def test_average_with_ceiling(self):
        m = RankMonitor(alpha=0.99, min_rank=1, max_rank=64)
        m._observed = [3, 4]
        assert m.recommended_rank() == 4  # ceil(3.5)

    def test_clamping(self):
        m = RankMonitor(min_rank=4, max_rank=6)
        m._observed = [1]
        assert m.recommended_rank() == 4
        m._observed = [60]
        assert m.recommended_rank() == 6

    def test_window_eviction(self):
        m = RankMonitor(window=3)
        for _ in range(5):
            m.observe(_lowrank_matrix(20, 8, 2))
        assert m.num_observations == 3

    def test_observe_returns_instantaneous_rank(self):
        m = RankMonitor(alpha=0.99)
        r = m.observe(_lowrank_matrix(50, 16, 3))
        assert r == 3


class TestDynamicTau:
    def test_top_fraction_boundary(self):
        counts = np.arange(100, 0, -1)  # 100..1
        tau = dynamic_tau_from_counts(counts, hot_fraction=0.10)
        assert tau == 91  # the 10th largest count

    def test_empty_counts(self):
        assert dynamic_tau_from_counts(np.array([])) == 1.0

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            dynamic_tau_from_counts(np.ones(5), hot_fraction=0.0)

    def test_floor_at_one(self):
        assert dynamic_tau_from_counts(np.zeros(10) + 0.5) == 1.0


class TestUsageTracker:
    def test_validation(self):
        with pytest.raises(ValueError):
            UsageTracker(0, 1.0, 1, 10)
        with pytest.raises(ValueError):
            UsageTracker(10, 1.0, 5, 2)

    def test_frequency_counting(self):
        t = UsageTracker(window_iters=10, tau_prune=2, c_min=1, c_max=100)
        t.record_update(np.array([1, 2]))
        t.record_update(np.array([1]))
        assert t.frequency(1) == 2
        assert t.frequency(2) == 1
        assert t.frequency(9) == 0

    def test_duplicates_within_iteration_count_once(self):
        t = UsageTracker(10, 1, 1, 100)
        t.record_update(np.array([5, 5, 5]))
        assert t.frequency(5) == 1

    def test_window_expiry(self):
        t = UsageTracker(window_iters=2, tau_prune=1, c_min=1, c_max=100)
        t.record_update(np.array([1]))
        t.record_update(np.array([2]))
        t.record_update(np.array([3]))  # iteration with id 1 expires
        assert t.frequency(1) == 0
        assert t.num_tracked == 2

    def test_active_set_threshold(self):
        t = UsageTracker(10, tau_prune=2, c_min=1, c_max=100)
        for _ in range(3):
            t.record_update(np.array([7]))
        t.record_update(np.array([8]))
        active = t.active_set()
        assert active.tolist() == [7]

    def test_decide_clamps_capacity(self):
        t = UsageTracker(10, tau_prune=1, c_min=5, c_max=8)
        d = t.decide()
        assert d.new_capacity == 5  # empty active set -> floor
        for i in range(20):
            t.record_update(np.array([i]))
        d = t.decide()
        assert d.new_capacity == 8  # ceiling

    def test_refresh_tau(self):
        t = UsageTracker(100, tau_prune=1, c_min=1, c_max=1000)
        for rep, idx in [(5, 0), (3, 1), (1, 2)]:
            for _ in range(rep):
                t.record_update(np.array([idx]))
        tau = t.refresh_tau_from_window(hot_fraction=0.34)
        assert tau == 5.0  # top-1 of 3 tracked ids
