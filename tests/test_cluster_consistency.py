"""Tests for fleet replica-consistency checking."""

import pytest

from repro.cluster.consistency import (
    check_prediction_consistency,
    parameter_divergence,
)
from repro.data.synthetic import DriftingCTRStream, StreamConfig
from repro.dlrm.model import DLRM, DLRMConfig
from repro.dlrm.optim import SGD

TABLE_SIZES = (50, 40)


def _model(seed=0):
    return DLRM(
        DLRMConfig(
            num_dense=3,
            embedding_dim=4,
            table_sizes=TABLE_SIZES,
            bottom_mlp=(8,),
            top_mlp=(8,),
            seed=seed,
        )
    )


def _probe(seed=1):
    stream = DriftingCTRStream(
        StreamConfig(table_sizes=TABLE_SIZES, num_dense=3, seed=seed)
    )
    return stream.next_batch(32)


class TestPredictionConsistency:
    def test_identical_replicas_consistent(self):
        base = _model()
        fleet = [base.copy() for _ in range(3)]
        report = check_prediction_consistency(fleet, _probe())
        assert report.consistent
        assert report.max_prediction_gap == pytest.approx(0.0, abs=1e-15)
        assert "CONSISTENT" in report.summary

    def test_diverged_replica_detected(self):
        base = _model()
        fleet = [base.copy() for _ in range(3)]
        probe = _probe()
        fleet[2].train_step(
            probe.dense, probe.sparse_ids, probe.labels, SGD(lr=0.5)
        )
        report = check_prediction_consistency(fleet, probe)
        assert not report.consistent
        assert 2 in report.worst_pair
        assert "DIVERGED" in report.summary

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            check_prediction_consistency([], _probe())

    def test_overlay_alignment_checked(self):
        fleet = [_model(), _model()]
        with pytest.raises(ValueError):
            check_prediction_consistency(fleet, _probe(), overlays=[None])

    def test_overlays_participate(self):
        base = _model()
        fleet = [base.copy(), base.copy()]

        def shifted(field, ids, rows):
            return rows + 0.5

        report = check_prediction_consistency(
            fleet, _probe(), overlays=[None, shifted]
        )
        assert not report.consistent

    def test_tolerance_respected(self):
        base = _model()
        fleet = [base.copy(), base.copy()]
        fleet[1].embeddings[0].weight += 1e-12
        report = check_prediction_consistency(fleet, _probe(), tolerance=1e-6)
        assert report.consistent


class TestParameterDivergence:
    def test_single_model_empty(self):
        assert parameter_divergence([_model()]) == {}

    def test_localizes_divergence(self):
        base = _model()
        fleet = [base.copy(), base.copy()]
        fleet[1].embeddings[1].weight[0] += 2.0
        div = parameter_divergence(fleet)
        assert div["table_1"] == pytest.approx(2.0)
        assert div["table_0"] == pytest.approx(0.0)
        assert div["dense"] == pytest.approx(0.0)

    def test_dense_divergence_reported(self):
        base = _model()
        fleet = [base.copy(), base.copy()]
        fleet[0].top.weights[0] += 0.25
        assert parameter_divergence(fleet)["dense"] == pytest.approx(0.25)
