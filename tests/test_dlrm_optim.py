"""Tests for SGD and row-wise Adagrad optimizers."""

import numpy as np
import pytest

from repro.dlrm.embedding import EmbeddingTable, SparseRowGrad
from repro.dlrm.mlp import MLP
from repro.dlrm.optim import SGD, RowwiseAdagrad


def _grad(indices, dim, value=1.0):
    idx = np.array(indices)
    return SparseRowGrad(idx, np.full((len(idx), dim), value))


class TestSGD:
    def test_lr_validated(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)

    def test_sparse_step(self):
        table = EmbeddingTable(10, 4, rng=np.random.default_rng(0))
        before = table.weight.copy()
        SGD(lr=0.5).step_sparse(table, _grad([2], 4))
        np.testing.assert_allclose(table.weight[2], before[2] - 0.5)

    def test_dense_step(self):
        mlp = MLP([2, 2], rng=np.random.default_rng(0))
        x = np.ones((3, 2))
        out, cache = mlp.forward(x)
        _, grads = mlp.backward(cache, np.ones_like(out))
        before = mlp.weights[0].copy()
        SGD(lr=0.1).step_dense(mlp, grads)
        np.testing.assert_allclose(
            mlp.weights[0], before - 0.1 * grads.weights[0]
        )


class TestRowwiseAdagrad:
    def test_lr_validated(self):
        with pytest.raises(ValueError):
            RowwiseAdagrad(lr=-1.0)

    def test_effective_step_shrinks_with_repeats(self):
        table = EmbeddingTable(10, 4, rng=np.random.default_rng(0))
        opt = RowwiseAdagrad(lr=1.0)
        w0 = table.weight[1].copy()
        opt.step_sparse(table, _grad([1], 4))
        first_step = np.abs(table.weight[1] - w0).mean()
        w1 = table.weight[1].copy()
        opt.step_sparse(table, _grad([1], 4))
        second_step = np.abs(table.weight[1] - w1).mean()
        assert second_step < first_step

    def test_rows_have_independent_accumulators(self):
        table = EmbeddingTable(10, 4, rng=np.random.default_rng(0))
        opt = RowwiseAdagrad(lr=1.0)
        for _ in range(5):
            opt.step_sparse(table, _grad([1], 4))
        w3 = table.weight[3].copy()
        opt.step_sparse(table, _grad([3], 4))
        # row 3's first step is full-size despite row 1's history
        assert np.abs(table.weight[3] - w3).mean() == pytest.approx(1.0, rel=0.01)

    def test_touched_rows_recorded(self):
        table = EmbeddingTable(10, 4)
        RowwiseAdagrad().step_sparse(table, _grad([0, 5], 4))
        assert set(table.touched_rows().tolist()) == {0, 5}

    def test_state_tracks_multiple_tables(self):
        t1 = EmbeddingTable(10, 4)
        t2 = EmbeddingTable(20, 4)
        opt = RowwiseAdagrad(lr=1.0)
        opt.step_sparse(t1, _grad([0], 4))
        opt.step_sparse(t2, _grad([0], 4))
        assert len(opt._row_state) == 2

    def test_dense_adagrad_decreases_loss(self):
        rng = np.random.default_rng(1)
        mlp = MLP([3, 8, 1], rng=rng)
        x = rng.normal(size=(16, 3))
        opt = RowwiseAdagrad(lr=0.1)
        losses = []
        for _ in range(10):
            out, cache = mlp.forward(x)
            losses.append(float((out ** 2).sum()))
            _, grads = mlp.backward(cache, 2 * out)
            opt.step_dense(mlp, grads)
        assert losses[-1] < losses[0]
