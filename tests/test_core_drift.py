"""Tests for drift monitoring and the adaptive full-sync policy."""

import numpy as np
import pytest

from repro.core.drift import AdaptiveSyncPolicy, DriftMonitor
from repro.core.lora import LoRACollection
from repro.data.synthetic import DriftingCTRStream, StreamConfig
from repro.dlrm.model import DLRM, DLRMConfig
from repro.dlrm.optim import RowwiseAdagrad

TABLE_SIZES = (60, 40)


@pytest.fixture
def model():
    return DLRM(
        DLRMConfig(
            num_dense=3,
            embedding_dim=4,
            table_sizes=TABLE_SIZES,
            bottom_mlp=(8,),
            top_mlp=(8,),
            seed=0,
        )
    )


class TestDriftMonitor:
    def test_no_drift_at_anchor(self, model):
        mon = DriftMonitor(model)
        sample = mon.observe(0.0, model)
        assert sample.base_divergence == pytest.approx(0.0)
        assert sample.adapter_norm == 0.0

    def test_training_shows_as_divergence(self, model):
        mon = DriftMonitor(model.copy())
        stream = DriftingCTRStream(
            StreamConfig(table_sizes=TABLE_SIZES, num_dense=3, seed=1)
        )
        opt = RowwiseAdagrad(lr=0.1)
        for _ in range(5):
            b = stream.next_batch(64)
            model.train_step(b.dense, b.sparse_ids, b.labels, opt)
        sample = mon.observe(60.0, model)
        assert sample.base_divergence > 0

    def test_adapter_norm_component(self, model):
        mon = DriftMonitor(model)
        lora = LoRACollection([4, 4], rank=2, capacities=[8, 8], seed=0)
        slot = lora[0].activate(1)
        lora[0].a[slot] = np.ones(2)
        sample = mon.observe(0.0, model, lora_collection=lora)
        assert sample.adapter_norm > 0
        assert sample.total == sample.adapter_norm + sample.base_divergence

    def test_reference_overrides_anchor(self, model):
        mon = DriftMonitor(model)
        other = model.copy()
        other.embeddings[0].weight += 1.0
        against_anchor = mon.observe(0.0, model).base_divergence
        against_ref = mon.observe(0.0, model, reference=other).base_divergence
        assert against_anchor == pytest.approx(0.0)
        assert against_ref > 0

    def test_re_anchor_resets(self, model):
        mon = DriftMonitor(model.copy())
        model.embeddings[0].weight += 1.0
        assert mon.observe(0.0, model).base_divergence > 0
        mon.re_anchor(model)
        assert mon.observe(1.0, model).base_divergence == pytest.approx(0.0)

    def test_latest(self, model):
        mon = DriftMonitor(model)
        assert mon.latest() is None
        mon.observe(5.0, model)
        assert mon.latest().time_s == 5.0


class TestAdaptiveSyncPolicy:
    def _sample(self, total):
        from repro.core.drift import DriftSample

        return DriftSample(time_s=0.0, adapter_norm=total, base_divergence=0.0)

    def test_fires_on_max_interval(self):
        policy = AdaptiveSyncPolicy(drift_threshold=1e9, max_interval_s=3600)
        assert not policy.should_sync(1800.0, None)
        assert policy.should_sync(3600.0, None)
        assert policy.decisions[-1][1] == "interval"

    def test_fires_early_on_drift(self):
        policy = AdaptiveSyncPolicy(drift_threshold=1.0, max_interval_s=3600)
        assert policy.should_sync(900.0, self._sample(2.0))
        assert policy.decisions[-1][1] == "drift"

    def test_refractory_period(self):
        policy = AdaptiveSyncPolicy(
            drift_threshold=1.0, min_interval_s=600, max_interval_s=3600
        )
        policy.mark_synced(1000.0)
        assert not policy.should_sync(1100.0, self._sample(100.0))
        assert policy.should_sync(1700.0, self._sample(100.0))

    def test_low_drift_waits_for_interval(self):
        policy = AdaptiveSyncPolicy(drift_threshold=5.0, max_interval_s=3600)
        assert not policy.should_sync(1800.0, self._sample(0.1))

    def test_mark_synced_restarts_clock(self):
        policy = AdaptiveSyncPolicy(drift_threshold=1e9, max_interval_s=1000)
        assert policy.should_sync(1000.0, None)
        policy.mark_synced(1000.0)
        assert not policy.should_sync(1500.0, None)
        assert policy.should_sync(2000.0, None)
