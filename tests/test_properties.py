"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lora import LoRAAdapter
from repro.core.pruning import UsageTracker
from repro.core.rank_adaptation import cumulative_variance, rank_for_variance
from repro.core.sync import priority_merge
from repro.dlrm.metrics import auc_roc
from repro.dlrm.model import sigmoid
from repro.hardware.cache import LRUCache
from repro.cluster.timeline import simulate_periodic_updates


# ------------------------------------------------------------------ metrics
@given(
    labels=st.lists(st.integers(0, 1), min_size=2, max_size=200),
    seed=st.integers(0, 2 ** 16),
)
def test_auc_bounded_and_complement_symmetric(labels, seed):
    labels = np.array(labels, dtype=float)
    scores = np.random.default_rng(seed).random(len(labels))
    auc = auc_roc(labels, scores)
    if np.isnan(auc):
        assert labels.min() == labels.max()
    else:
        assert 0.0 <= auc <= 1.0
        # reversing the ranking reflects the AUC around 0.5
        assert abs(auc_roc(labels, -scores) - (1.0 - auc)) < 1e-9


@given(st.lists(st.floats(-50, 50), min_size=1, max_size=50))
def test_sigmoid_bounded_and_monotone(zs):
    z = np.sort(np.array(zs))
    s = sigmoid(z)
    assert ((s >= 0) & (s <= 1)).all()
    assert (np.diff(s) >= -1e-12).all()


# -------------------------------------------------------------------- cache
@given(
    keys=st.lists(st.integers(0, 30), min_size=1, max_size=300),
    capacity_entries=st.integers(1, 40),
)
def test_lru_cache_never_exceeds_capacity(keys, capacity_entries):
    size = 8
    cache = LRUCache(capacity_entries * size)
    for k in keys:
        cache.access(k, size)
        assert cache.used_bytes <= cache.capacity_bytes
        assert cache.num_entries * size == cache.used_bytes


@given(keys=st.lists(st.integers(0, 10), min_size=1, max_size=100))
def test_lru_cache_with_huge_capacity_misses_once_per_key(keys):
    cache = LRUCache(10_000)
    misses = sum(0 if cache.access(k, 1) else 1 for k in keys)
    assert misses == len(set(keys))


# --------------------------------------------------------------------- LoRA
@given(
    ids=st.lists(st.integers(0, 19), min_size=1, max_size=20, unique=True),
    rank=st.integers(1, 8),
    seed=st.integers(0, 100),
)
@settings(max_examples=30, deadline=None)
def test_lora_grow_preserves_delta(ids, rank, seed):
    dim = 8
    rng = np.random.default_rng(seed)
    adapter = LoRAAdapter(dim=dim, rank=rank, capacity=32, rng=rng)
    arr = np.array(ids)
    adapter.accumulate_grad(arr, rng.normal(size=(len(arr), dim)), lr=0.1)
    before = adapter.delta_rows(arr)
    adapter.resize_rank(min(rank + 3, dim))
    np.testing.assert_allclose(adapter.delta_rows(arr), before, atol=1e-9)


@given(
    ids=st.lists(st.integers(0, 49), min_size=1, max_size=40),
    seed=st.integers(0, 100),
)
@settings(max_examples=30, deadline=None)
def test_lora_merge_equals_overlay(ids, seed):
    """merge_into(base) must equal base + delta for every active id."""
    dim = 6
    rng = np.random.default_rng(seed)
    adapter = LoRAAdapter(dim=dim, rank=3, capacity=64, rng=rng)
    arr = np.unique(np.array(ids))
    adapter.accumulate_grad(arr, rng.normal(size=(len(arr), dim)), lr=0.2)
    base = rng.normal(size=(50, dim))
    expected = base[arr] + adapter.delta_rows(arr)
    weight = base.copy()
    adapter.merge_into(weight)
    np.testing.assert_allclose(weight[arr], expected, atol=1e-9)


# ---------------------------------------------------------- rank adaptation
@given(
    n=st.integers(2, 40),
    d=st.integers(2, 16),
    seed=st.integers(0, 1000),
    alpha=st.floats(0.1, 1.0, exclude_min=True),
)
@settings(max_examples=50, deadline=None)
def test_rank_for_variance_within_bounds(n, d, seed, alpha):
    m = np.random.default_rng(seed).normal(size=(n, d))
    r = rank_for_variance(m, alpha)
    assert 1 <= r <= min(n, d)
    cum = cumulative_variance(m)
    assert cum[r - 1] >= alpha - 1e-9
    if r > 1:
        assert cum[r - 2] < alpha


# ------------------------------------------------------------------ pruning
@given(
    updates=st.lists(
        st.lists(st.integers(0, 15), min_size=1, max_size=8),
        min_size=1,
        max_size=40,
    ),
    window=st.integers(1, 20),
)
@settings(max_examples=50, deadline=None)
def test_usage_tracker_counts_match_window(updates, window):
    tracker = UsageTracker(window_iters=window, tau_prune=1, c_min=1, c_max=100)
    for ids in updates:
        tracker.record_update(np.array(ids))
    recent = updates[-window:]
    for idx in range(16):
        expected = sum(1 for ids in recent if idx in ids)
        assert tracker.frequency(idx) == expected


@given(
    updates=st.lists(
        st.lists(st.integers(0, 15), min_size=1, max_size=8),
        min_size=1,
        max_size=30,
    ),
    c_min=st.integers(1, 5),
    c_max=st.integers(5, 30),
)
@settings(max_examples=50, deadline=None)
def test_capacity_always_clamped(updates, c_min, c_max):
    tracker = UsageTracker(10, tau_prune=1, c_min=c_min, c_max=max(c_min, c_max))
    for ids in updates:
        tracker.record_update(np.array(ids))
    decision = tracker.decide()
    assert c_min <= decision.new_capacity <= max(c_min, c_max)


# ------------------------------------------------------------------- merge
@given(
    data=st.lists(
        st.dictionaries(
            st.integers(0, 10), st.floats(-10, 10), min_size=0, max_size=5
        ),
        min_size=0,
        max_size=5,
    )
)
def test_priority_merge_respects_max_rank(data):
    per_rank = [
        {k: np.array([v]) for k, v in d.items()} for d in data
    ]
    merged = priority_merge(per_rank)
    for idx, value in merged.items():
        owners = [r for r, d in enumerate(data) if idx in d]
        assert value[0] == data[max(owners)][idx]
    all_keys = set().union(*(d.keys() for d in data)) if data else set()
    assert set(merged) == all_keys


# ----------------------------------------------------------------- timeline
@given(
    interval=st.floats(30, 900),
    duration=st.floats(0.1, 2000),
)
@settings(max_examples=50, deadline=None)
def test_timeline_staleness_never_negative(interval, duration):
    tl = simulate_periodic_updates(3600, interval, duration, kind="x")
    for t in np.linspace(0, 3600, 37):
        assert tl.staleness_at(float(t)) >= 0
    # versions are non-decreasing in time
    versions = [tl.version_at(float(t)) for t in np.linspace(0, 3600, 37)]
    assert all(a <= b for a, b in zip(versions, versions[1:]))
