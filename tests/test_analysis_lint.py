"""Self-tests for the ``repro.analysis`` invariant linter.

Every rule gets a fixture pair — a snippet that must fire and a clean
snippet that must not — plus suppression-comment handling, the JSON
reporter schema, CLI exit codes, and the self-gate: the linter must
report zero errors over this repository, with no suppressions inside
``repro.core.kernels`` or ``repro.cluster.shardstore``.
"""

import json
import pathlib
import textwrap

import pytest

from repro.analysis import (
    FileContext,
    JSON_SCHEMA_VERSION,
    LintConfig,
    lint_context,
    lint_paths,
    module_name_for,
    render_json,
    render_text,
    rule_names,
)
from repro.analysis.cli import main as cli_main

REPO = pathlib.Path(__file__).resolve().parent.parent

HOT_PATH = "src/repro/core/kernels.py"  # in the hot-module scope
PLACEMENT_PATH = "src/repro/cluster/shardstore/placement.py"
SIM_PATH = "src/repro/data/zipf.py"  # src, but not hot/placement


def findings_for(source, path, rule=None, config=None):
    """Lint a dedented snippet as if it lived at ``path``."""
    ctx = FileContext.from_source(textwrap.dedent(source), path)
    found = lint_context(ctx, config or LintConfig())
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


def active(findings):
    return [f for f in findings if not f.suppressed]


# ----------------------------------------------------------- rule registry
def test_all_eight_rules_registered():
    assert rule_names() == [
        "no-salted-hash",
        "no-unseeded-rng",
        "no-wallclock-in-sim",
        "hot-loop",
        "dtype-discipline",
        "public-api",
        "obs-discipline",
        "no-bare-except",
    ]


def test_module_name_mapping():
    assert module_name_for("src/repro/core/kernels.py") == "repro.core.kernels"
    assert (
        module_name_for("/abs/src/repro/cluster/shardstore/__init__.py")
        == "repro.cluster.shardstore"
    )
    assert module_name_for("tests/test_docs.py") == "tests.test_docs"
    assert module_name_for("benchmarks/bench_x.py") == "benchmarks.bench_x"


# --------------------------------------------------------- no-salted-hash
class TestNoSaltedHash:
    def test_fires_on_builtin_hash_in_placement_module(self):
        src = """
            def shard_of(key, n):
                return hash(key) % n
        """
        found = findings_for(src, PLACEMENT_PATH, "no-salted-hash")
        assert len(found) == 1
        assert "splitmix64" in found[0].message

    def test_clean_with_stable_hash_family(self):
        src = """
            from repro.core.kernels import splitmix64

            def shard_of(keys, n):
                return splitmix64(keys) % n
        """
        assert not findings_for(src, PLACEMENT_PATH, "no-salted-hash")

    def test_out_of_scope_module_not_checked(self):
        src = "x = hash('anything')\n"
        assert not findings_for(src, SIM_PATH, "no-salted-hash")


# -------------------------------------------------------- no-unseeded-rng
class TestNoUnseededRng:
    def test_fires_on_bare_np_random(self):
        src = """
            import numpy as np
            noise = np.random.rand(100)
        """
        found = findings_for(src, SIM_PATH, "no-unseeded-rng")
        assert len(found) == 1

    def test_fires_on_unseeded_default_rng(self):
        src = """
            import numpy as np
            rng = np.random.default_rng()
        """
        assert findings_for(src, SIM_PATH, "no-unseeded-rng")

    def test_fires_on_stdlib_random(self):
        src = """
            import random
            x = random.random()
        """
        assert findings_for(src, SIM_PATH, "no-unseeded-rng")
        src = """
            from random import randint
            x = randint(0, 5)
        """
        assert findings_for(src, SIM_PATH, "no-unseeded-rng")

    def test_clean_with_seeded_generator(self):
        src = """
            import numpy as np
            rng = np.random.default_rng(42)
            noise = rng.random(100)

            def sample(rng: np.random.Generator):
                return rng.integers(0, 10, 5)
        """
        assert not findings_for(src, SIM_PATH, "no-unseeded-rng")


# ---------------------------------------------------- no-wallclock-in-sim
class TestNoWallclockInSim:
    def test_fires_on_time_time(self):
        src = """
            import time
            stamp = time.time()
        """
        assert findings_for(src, SIM_PATH, "no-wallclock-in-sim")

    def test_fires_on_datetime_now_via_from_import(self):
        src = """
            from datetime import datetime
            stamp = datetime.now()
        """
        assert findings_for(src, SIM_PATH, "no-wallclock-in-sim")

    def test_perf_counter_is_allowed(self):
        src = """
            import time
            t0 = time.perf_counter()
        """
        assert not findings_for(src, SIM_PATH, "no-wallclock-in-sim")

    def test_benchmarks_may_read_the_clock(self):
        src = """
            import time
            t0 = time.time()
        """
        assert not findings_for(
            src, "benchmarks/bench_x.py", "no-wallclock-in-sim"
        )


# ----------------------------------------------------------------- hot-loop
class TestHotLoop:
    def test_fires_on_tolist_loop(self):
        src = """
            def drain(arr):
                total = 0
                for value in arr.tolist():
                    total += value
                return total
        """
        found = findings_for(src, HOT_PATH, "hot-loop")
        assert len(found) == 1

    def test_fires_on_range_len_and_range_size(self):
        src = """
            def scan(arr):
                for i in range(len(arr)):
                    arr[i] += 1
                for i in range(arr.size):
                    arr[i] += 1
        """
        assert len(findings_for(src, HOT_PATH, "hot-loop")) == 2

    def test_fires_inside_zip_enumerate(self):
        src = """
            def pairs(a, b):
                for x, y in zip(a.tolist(), b.tolist()):
                    yield x + y
        """
        assert findings_for(src, HOT_PATH, "hot-loop")

    def test_chunked_and_structural_loops_are_clean(self):
        src = """
            def chunked(arr, n, chunk):
                for lo in range(0, n, chunk):
                    arr[lo : lo + chunk] += 1

            def classes(groups):
                for size, members in groups.items():
                    yield size, members
        """
        assert not findings_for(src, HOT_PATH, "hot-loop")

    def test_cold_modules_may_loop(self):
        src = """
            def fine(arr):
                return [x + 1 for x in arr.tolist()]

            def also_fine(arr):
                out = 0
                for x in arr.tolist():
                    out += x
                return out
        """
        assert not findings_for(src, SIM_PATH, "hot-loop")


# ---------------------------------------------------------- dtype-discipline
class TestDtypeDiscipline:
    def test_fires_on_dtypeless_constructors(self):
        src = """
            import numpy as np

            def build(x):
                a = np.zeros(4)
                b = np.arange(10)
                c = np.asarray(x)
                return a, b, c
        """
        found = findings_for(src, HOT_PATH, "dtype-discipline")
        assert len(found) == 3

    def test_clean_with_explicit_dtype(self):
        src = """
            import numpy as np

            def build(x):
                a = np.zeros(4, dtype=np.float64)
                b = np.arange(10, dtype=np.int64)
                c = np.asarray(x, dtype=np.int64)
                d = np.empty_like(a)
                return a, b, c, d
        """
        assert not findings_for(src, HOT_PATH, "dtype-discipline")

    def test_cold_modules_unconstrained(self):
        src = """
            import numpy as np
            probe = np.zeros(3)
        """
        assert not findings_for(src, SIM_PATH, "dtype-discipline")

    def test_fires_on_mixed_lane_binop(self):
        src = """
            import numpy as np

            def mix():
                a = np.zeros(4, dtype=np.float32)
                b = np.ones(4, dtype=np.float64)
                return a + b
        """
        found = findings_for(src, HOT_PATH, "dtype-discipline")
        assert len(found) == 1
        assert "mixes float lanes" in found[0].message

    def test_fires_on_mixed_lane_astype(self):
        src = """
            import numpy as np

            def mix(x, y):
                a = x.astype(np.float32)
                b = y.astype("float64")
                return a * b
        """
        found = findings_for(src, HOT_PATH, "dtype-discipline")
        assert len(found) == 1

    def test_same_lane_and_dynamic_lanes_clean(self):
        src = """
            import numpy as np

            def ok(x, lane):
                a = np.zeros(4, dtype=np.float32)
                b = np.ones(4, dtype=np.float32)
                c = np.zeros(4, dtype=lane)  # dynamic: no lane recorded
                d = a + b
                return d + c
        """
        assert not findings_for(src, HOT_PATH, "dtype-discipline")

    def test_mixed_lane_silent_in_cold_modules(self):
        src = """
            import numpy as np

            a = np.zeros(4, dtype=np.float32)
            b = np.ones(4, dtype=np.float64)
            c = a + b
        """
        assert not findings_for(src, SIM_PATH, "dtype-discipline")


# ---------------------------------------------------------------- public-api
class TestPublicApi:
    def test_fires_on_missing_docstring_and_all(self):
        src = "X = 1\n"
        found = findings_for(src, "src/repro/newmod.py", "public-api")
        messages = " | ".join(f.message for f in found)
        assert "docstring" in messages
        assert "__all__" in messages

    def test_fires_on_unbound_and_undocumented_names(self):
        src = '''
            """Module docstring."""

            __all__ = ["present", "ghost"]


            def present():
                return 1
        '''
        found = findings_for(src, "src/repro/newmod.py", "public-api")
        messages = " | ".join(f.message for f in found)
        assert "'ghost'" in messages and "never binds" in messages
        assert "'present'" in messages and "no docstring" in messages

    def test_clean_module_passes(self):
        src = '''
            """Module docstring."""

            __all__ = ["CONSTANT", "helper"]

            CONSTANT = 7


            def helper():
                """Documented."""
                return CONSTANT
        '''
        assert not findings_for(src, "src/repro/newmod.py", "public-api")

    def test_lazy_export_dict_pattern_resolves(self):
        src = '''
            """Lazy package facade."""

            _EXPORTS = {"alpha": "mod_a", "beta": "mod_b"}

            __all__ = list(_EXPORTS)


            def __getattr__(name):
                """PEP 562 lazy loader."""
                raise AttributeError(name)
        '''
        assert not findings_for(
            src, "src/repro/pkg/__init__.py", "public-api"
        )

    def test_private_and_non_src_modules_skipped(self):
        src = "X = 1\n"
        assert not findings_for(src, "src/repro/_private.py", "public-api")
        assert not findings_for(src, "tests/test_thing.py", "public-api")


# ------------------------------------------------------------ obs-discipline
class TestObsDiscipline:
    def test_fires_on_non_literal_metric_name(self):
        src = """
            def make(reg, name):
                return reg.counter(name)
        """
        found = findings_for(src, SIM_PATH, "obs-discipline")
        assert len(found) == 1
        assert "string literal" in found[0].message

    def test_fires_on_bad_literal_name(self):
        src = """
            def make(reg):
                return reg.histogram("BadName")
        """
        found = findings_for(src, SIM_PATH, "obs-discipline")
        assert len(found) == 1
        assert "lowercase dotted" in found[0].message

    def test_clean_on_dotted_literal_names(self):
        src = """
            def make(reg, tracer):
                c = reg.counter("serving.requests")
                g = reg.gauge("shardstore.store.version")
                h = reg.histogram("serving.latency_ms", lo=0.01)
                with tracer.span("cluster.train.step"):
                    pass
                return c, g, h
        """
        assert not findings_for(src, SIM_PATH, "obs-discipline")

    def test_numpy_histogram_is_not_a_metric_factory(self):
        src = """
            import numpy as np

            def binned(values):
                return np.histogram(values, bins=10)
        """
        assert not findings_for(src, SIM_PATH, "obs-discipline")

    def test_fires_on_per_item_observe_in_loop_in_hot_module(self):
        src = """
            def feed(hist, values):
                for v in values:
                    hist.observe(v)
        """
        found = findings_for(src, HOT_PATH, "obs-discipline")
        assert len(found) == 1
        assert "observe_many" in found[0].message

    def test_fires_on_per_item_inc_in_while_loop_in_hot_module(self):
        src = """
            def count(counter, n):
                i = 0
                while i < n:
                    counter.inc()
                    i += 1
        """
        assert len(findings_for(src, HOT_PATH, "obs-discipline")) == 1

    def test_per_item_observe_in_loop_ok_outside_hot_modules(self):
        src = """
            def feed(hist, values):
                for v in values:
                    hist.observe(v)
        """
        assert not findings_for(src, SIM_PATH, "obs-discipline")

    def test_batched_observe_many_in_loop_is_fine_in_hot_module(self):
        src = """
            def feed(hist, chunks):
                for chunk in chunks:
                    hist.observe_many(chunk)
        """
        assert not findings_for(src, HOT_PATH, "obs-discipline")


# ------------------------------------------------------------ no-bare-except
class TestNoBareExcept:
    def test_fires_on_bare_except(self):
        src = """
            def pull(client):
                try:
                    return client.pull()
                except:
                    return None
        """
        found = findings_for(src, SIM_PATH, "no-bare-except")
        assert len(found) == 1
        assert "bare `except:`" in found[0].message

    def test_fires_on_swallowed_broad_except(self):
        src = """
            def pull(client):
                try:
                    return client.pull()
                except Exception:
                    return None
        """
        found = findings_for(src, SIM_PATH, "no-bare-except")
        assert len(found) == 1
        assert "except Exception" in found[0].message

    def test_fires_on_broad_except_inside_tuple(self):
        src = """
            def pull(client):
                try:
                    return client.pull()
                except (ValueError, BaseException):
                    return None
        """
        found = findings_for(src, SIM_PATH, "no-bare-except")
        assert len(found) == 1
        assert "BaseException" in found[0].message

    def test_fires_on_bound_but_unused_exception(self):
        src = """
            def pull(client):
                try:
                    return client.pull()
                except Exception as err:
                    return None
        """
        assert findings_for(src, SIM_PATH, "no-bare-except")

    def test_reraise_is_clean(self):
        src = """
            def pull(client, counter):
                try:
                    return client.pull()
                except Exception:
                    counter.inc()
                    raise
        """
        assert not findings_for(src, SIM_PATH, "no-bare-except")

    def test_raise_from_is_clean(self):
        src = """
            def pull(client):
                try:
                    return client.pull()
                except Exception as err:
                    raise RuntimeError("pull failed") from err
        """
        assert not findings_for(src, SIM_PATH, "no-bare-except")

    def test_bound_and_recorded_is_clean(self):
        src = """
            def pull(client, log):
                try:
                    return client.pull()
                except Exception as err:
                    log.append(err)
                    return None
        """
        assert not findings_for(src, SIM_PATH, "no-bare-except")

    def test_named_exception_class_is_clean(self):
        src = """
            def pull(client):
                try:
                    return client.pull()
                except (TimeoutError, ConnectionError):
                    return None
        """
        assert not findings_for(src, SIM_PATH, "no-bare-except")

    def test_tests_are_exempt(self):
        src = """
            def test_raises(client):
                try:
                    client.pull()
                except Exception:
                    pass
        """
        assert not findings_for(
            src, "tests/test_thing.py", "no-bare-except"
        )

    def test_suppression_requires_reason(self):
        bare = """
            def pull(client):
                try:
                    return client.pull()
                except Exception:  # repro-lint: disable=no-bare-except
                    return None
        """
        found = findings_for(bare, SIM_PATH, "no-bare-except")
        assert active(found), "reasonless disable must not silence it"
        assert "needs a reason" in found[0].message

        reasoned = """
            def pull(client):
                try:
                    return client.pull()
                except Exception:  # repro-lint: disable=no-bare-except -- best-effort probe
                    return None
        """
        found = findings_for(reasoned, SIM_PATH, "no-bare-except")
        assert len(found) == 1 and found[0].suppressed
        assert "best-effort probe" in found[0].suppress_reason


# -------------------------------------------------------------- suppressions
class TestSuppressions:
    def test_trailing_disable_suppresses(self):
        src = """
            import numpy as np
            probe = np.zeros(4)  # repro-lint: disable=dtype-discipline
        """
        found = findings_for(src, HOT_PATH, "dtype-discipline")
        assert len(found) == 1 and found[0].suppressed

    def test_disable_on_line_above_suppresses(self):
        src = """
            import numpy as np
            # repro-lint: disable=dtype-discipline
            probe = np.zeros(4)
        """
        found = findings_for(src, HOT_PATH, "dtype-discipline")
        assert len(found) == 1 and found[0].suppressed

    def test_wrong_rule_name_does_not_suppress(self):
        src = """
            import numpy as np
            probe = np.zeros(4)  # repro-lint: disable=hot-loop
        """
        found = findings_for(src, HOT_PATH, "dtype-discipline")
        assert active(found)

    def test_disable_all_suppresses_everything(self):
        src = '''
            """Doc."""

            import numpy as np

            __all__ = []

            probe = np.zeros(4)  # repro-lint: disable=all
        '''
        assert not active(findings_for(src, HOT_PATH))

    def test_hot_loop_suppression_requires_reason(self):
        bare = """
            def drain(arr):
                # repro-lint: disable=hot-loop
                for value in arr.tolist():
                    print(value)
        """
        found = findings_for(bare, HOT_PATH, "hot-loop")
        assert active(found), "reasonless disable must not silence hot-loop"
        assert "needs a reason" in found[0].message

        reasoned = """
            def drain(arr):
                # repro-lint: disable=hot-loop -- sequential fallback, O(evictions) not O(batch)
                for value in arr.tolist():
                    print(value)
        """
        found = findings_for(reasoned, HOT_PATH, "hot-loop")
        assert len(found) == 1 and found[0].suppressed
        assert "sequential fallback" in found[0].suppress_reason

    def test_reason_survives_into_reports(self):
        src = """
            import numpy as np
            probe = np.zeros(4)  # repro-lint: disable=dtype-discipline -- scratch probe
        """
        found = findings_for(src, HOT_PATH, "dtype-discipline")
        assert found[0].suppress_reason == "scratch probe"


# ------------------------------------------------------------- JSON reporter
class TestJsonReporter:
    def test_schema(self, tmp_path):
        dirty = tmp_path / "src" / "repro" / "core" / "kernels.py"
        dirty.parent.mkdir(parents=True)
        dirty.write_text(
            '"""Doc."""\n\n__all__ = []\n\nimport numpy as np\n\nx = np.zeros(3)\n'
        )
        result = lint_paths([tmp_path / "src"])
        payload = json.loads(render_json(result))
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_scanned"] == 1
        assert set(payload["summary"]) == {"errors", "warnings", "suppressed"}
        assert payload["summary"]["errors"] == len(payload["findings"]) > 0
        for finding in payload["findings"]:
            assert set(finding) == {
                "rule",
                "path",
                "line",
                "col",
                "severity",
                "message",
                "suppressed",
                "suppress_reason",
            }

    def test_text_reporter_mentions_counts(self):
        result = lint_paths([])
        assert "0 error(s)" in render_text(result)


# ------------------------------------------------------------------- the CLI
class TestCli:
    def _write(self, tmp_path, rel, body):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body))
        return path

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        self._write(
            tmp_path,
            "src/repro/clean.py",
            '''
            """Clean module."""

            __all__ = ["X"]

            X = 1
            ''',
        )
        assert cli_main([str(tmp_path / "src")]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_exit_one_on_violation(self, tmp_path, capsys):
        self._write(
            tmp_path,
            "src/repro/core/kernels.py",
            '''
            """Hot module."""

            import numpy as np

            __all__ = []

            x = np.zeros(3)
            ''',
        )
        assert cli_main([str(tmp_path)]) == 1
        assert "dtype-discipline" in capsys.readouterr().out

    def test_exit_one_on_syntax_error(self, tmp_path, capsys):
        self._write(tmp_path, "src/repro/broken.py", "def f(:\n")
        assert cli_main([str(tmp_path)]) == 1
        assert "syntax-error" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        self._write(tmp_path, "src/repro/x.py", '"""D."""\n\n__all__ = []\n')
        assert cli_main(["--select", "no-such-rule", str(tmp_path)]) == 2

    def test_exit_two_on_missing_path(self, capsys):
        assert cli_main([str(REPO / "no" / "such" / "dir")]) == 2

    def test_exit_two_on_no_paths(self, capsys):
        assert cli_main([]) == 2

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in rule_names():
            assert name in out

    def test_select_runs_only_selected(self, tmp_path, capsys):
        self._write(
            tmp_path,
            "src/repro/core/kernels.py",
            '''
            """Hot module."""

            import numpy as np

            __all__ = []

            x = np.zeros(3)

            for v in x.tolist():
                pass
            ''',
        )
        assert cli_main(["--select", "hot-loop", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "hot-loop" in out and "dtype-discipline" not in out

    def test_json_output_parses(self, tmp_path, capsys):
        self._write(tmp_path, "src/repro/y.py", '"""D."""\n\n__all__ = []\n')
        assert cli_main(["--format", "json", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION


# ------------------------------------------------------------- the self-gate
class TestRepoIsClean:
    """The acceptance gate: this repository lints clean, always."""

    @pytest.fixture(scope="class")
    def result(self):
        return lint_paths(
            [REPO / "src", REPO / "tests", REPO / "benchmarks", REPO / "examples"]
        )

    def test_zero_errors(self, result):
        assert result.errors == [], render_text(result)

    def test_no_suppressions_in_kernels_or_shardstore(self, result):
        banned = [
            f
            for f in result.suppressed
            if "core/kernels.py" in f.path.replace("\\", "/")
            or "cluster/shardstore/" in f.path.replace("\\", "/")
        ]
        assert banned == [], [f"{f.path}:{f.line}" for f in banned]

    def test_every_suppression_carries_a_reason(self, result):
        missing = [f for f in result.suppressed if not f.suppress_reason]
        assert missing == [], [f"{f.path}:{f.line}" for f in missing]
