"""Tests for the AUC-to-revenue conversion model."""

import pytest

from repro.experiments.revenue import PAPER_CONVERSION, RevenueModel


class TestRevenueModel:
    def test_linear_conversion(self):
        m = RevenueModel(revenue_per_auc_point=20.0, annual_revenue_usd=1e9)
        assert m.revenue_change_pct(0.1) == pytest.approx(2.0)
        assert m.revenue_change_usd(0.1) == pytest.approx(2e7)

    def test_negative_delta_costs_revenue(self):
        m = RevenueModel()
        assert m.revenue_change_pct(-0.05) < 0

    def test_calibration(self):
        m = RevenueModel.from_calibration(
            auc_gain_pp=0.05, revenue_gain_pct=1.0
        )
        assert m.revenue_change_pct(0.05) == pytest.approx(1.0)

    def test_calibration_validates(self):
        with pytest.raises(ValueError):
            RevenueModel.from_calibration(0.0, 1.0)


class TestPaperConversion:
    def test_reproduces_paper_projection_band(self):
        """Paper: +0.04..0.24 pp AUC -> +1.60..4.11% revenue.

        The conversion is calibrated at the top of the band, so the top
        matches exactly; the bottom comes out close to the paper's lower
        bound (the paper's own band is not perfectly linear).
        """
        top = PAPER_CONVERSION.revenue_change_pct(0.24)
        bottom = PAPER_CONVERSION.revenue_change_pct(0.04)
        assert top == pytest.approx(4.11, rel=1e-6)
        assert bottom == pytest.approx(0.685, abs=0.3)

    def test_tens_of_millions_at_scale(self):
        """The paper's "tens of millions of dollars" claim at platform scale."""
        usd = RevenueModel(
            revenue_per_auc_point=PAPER_CONVERSION.revenue_per_auc_point,
            annual_revenue_usd=5e9,
        ).revenue_change_usd(0.12)
        assert usd > 5e7
