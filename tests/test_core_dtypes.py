"""Tests for the checked dtype coercers in ``repro.core.dtypes``.

These are the runtime half of the ``dtype-discipline`` lint rule: exact
integer coercion with loud failures on lossy inputs, pinned especially
around the float64 2**53 precision cliff.
"""

import numpy as np
import pytest

from repro.core.dtypes import as_float64_rows, as_int64_ids, as_uint64_keys
from repro.core.kernels import splitmix64


class TestAsInt64Ids:
    def test_int64_passthrough_is_no_copy(self):
        arr = np.array([1, 2, 3], dtype=np.int64)
        assert as_int64_ids(arr) is arr

    def test_smaller_ints_upcast(self):
        out = as_int64_ids(np.array([1, 2], dtype=np.int32))
        assert out.dtype == np.int64

    def test_python_ints_beyond_2_53_exact(self):
        big = 2**53
        out = as_int64_ids([big, big + 1])
        assert out.tolist() == [big, big + 1]

    def test_object_ints_exact(self):
        out = as_int64_ids(np.array([2**60, 5], dtype=object))
        assert out.tolist() == [2**60, 5]

    def test_float_rejected(self):
        with pytest.raises(TypeError, match="2\\*\\*53"):
            as_int64_ids(np.array([1.0, 2.0]))

    def test_object_float_rejected(self):
        with pytest.raises(TypeError):
            as_int64_ids(np.array([1, 2.5], dtype=object))

    def test_uint64_above_int64_max_overflows(self):
        with pytest.raises(OverflowError):
            as_int64_ids(np.array([2**63], dtype=np.uint64))

    def test_uint64_in_range_accepted(self):
        out = as_int64_ids(np.array([1, 2**62], dtype=np.uint64))
        assert out.dtype == np.int64 and out.tolist() == [1, 2**62]


class TestAsUint64Keys:
    def test_uint64_passthrough_is_no_copy(self):
        arr = np.array([1, 2**63], dtype=np.uint64)
        assert as_uint64_keys(arr) is arr

    def test_negative_ints_wrap_twos_complement(self):
        out = as_uint64_keys(np.array([-1], dtype=np.int64))
        assert out.tolist() == [2**64 - 1]

    def test_float_rejected(self):
        with pytest.raises(TypeError, match="keys"):
            as_uint64_keys(np.array([0.5]))

    def test_splitmix64_accepts_any_int_family(self):
        signed = np.array([-5, 7], dtype=np.int64)
        unsigned = signed.astype(np.uint64)
        np.testing.assert_array_equal(splitmix64(signed), splitmix64(unsigned))

    def test_splitmix64_rejects_floats(self):
        with pytest.raises(TypeError):
            splitmix64(np.array([1.5, 2.5]))


class TestAsFloat64Rows:
    def test_float64_passthrough_is_no_copy(self):
        arr = np.zeros((2, 3), dtype=np.float64)
        assert as_float64_rows(arr) is arr

    def test_ints_upcast_exactly(self):
        out = as_float64_rows(np.array([[1, 2]], dtype=np.int32))
        assert out.dtype == np.float64 and out.tolist() == [[1.0, 2.0]]

    def test_strings_rejected(self):
        with pytest.raises(TypeError):
            as_float64_rows(np.array([["a"]]))
