"""Additional property-based tests for the newer subsystems."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlrm.hashing import FeatureHasher, HashingConfig
from repro.dlrm.multihot import MultiHotField
from repro.hardware.tiered_store import TieredEmbeddingStore, TieredStoreConfig
from repro.serving.router import ConsistentHashRouter
from repro.experiments.update_cost import update_ratio


@given(
    raw=st.lists(st.integers(0, 2 ** 62), min_size=1, max_size=200),
    slots=st.integers(1, 10_000),
    seed=st.integers(0, 1000),
)
def test_hasher_total_and_deterministic(raw, slots, seed):
    h = FeatureHasher(HashingConfig(num_slots=slots, seed=seed))
    arr = np.array(raw)
    a = h.hash_ints(arr)
    b = h.hash_ints(arr)
    np.testing.assert_array_equal(a, b)
    assert a.min() >= 0 and a.max() < slots


@given(
    bags=st.lists(
        st.lists(st.integers(0, 30), min_size=0, max_size=6),
        min_size=1,
        max_size=20,
    )
)
def test_multihot_roundtrip_preserves_structure(bags):
    f = MultiHotField.from_lists(bags)
    assert f.batch_size == len(bags)
    assert f.bag_sizes().tolist() == [len(b) for b in bags]
    # flat ids reconstruct the original bags
    rebuilt = [
        f.ids[f.offsets[i] : f.offsets[i + 1]].tolist()
        for i in range(f.batch_size)
    ]
    assert rebuilt == [list(b) for b in bags]


@given(
    keys=st.lists(st.integers(0, 1 << 31), min_size=1, max_size=300),
    nodes=st.integers(1, 8),
    seed=st.integers(0, 50),
)
@settings(max_examples=30, deadline=None)
def test_router_total_and_sticky(keys, nodes, seed):
    router = ConsistentHashRouter(list(range(nodes)), seed=seed)
    arr = np.array(keys)
    first = router.route(arr)
    assert set(first.tolist()).issubset(set(range(nodes)))
    second = router.route(arr)
    np.testing.assert_array_equal(first, second)  # sticky without capacity


@given(
    ids=st.lists(st.integers(0, 99), min_size=1, max_size=300),
    hbm=st.integers(1, 50),
)
@settings(max_examples=30, deadline=None)
def test_tiered_store_conservation(ids, hbm):
    weight = np.arange(100 * 2, dtype=float).reshape(100, 2)
    store = TieredEmbeddingStore(
        weight, TieredStoreConfig(hbm_capacity_rows=hbm)
    )
    arr = np.array(ids)
    rows, latency = store.lookup(arr)
    # every access is attributed to exactly one tier
    assert store.stats.total == len(ids)
    assert store.stats.remote_misses == 0  # fully local store
    assert latency > 0
    np.testing.assert_array_equal(rows, weight[arr])
    assert store.hbm_rows <= hbm


@given(
    w1=st.floats(1.0, 7200.0),
    w2=st.floats(1.0, 7200.0),
)
def test_update_ratio_monotone_bounded(w1, w2):
    lo, hi = sorted((w1, w2))
    assert 0.0 <= update_ratio(lo) <= update_ratio(hi) < 0.35
