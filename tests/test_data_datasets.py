"""Tests for dataset specs (Table II) and stream builders."""

import pytest

from repro.data.datasets import (
    AVAZU,
    AVAZU_TB,
    BD_TB,
    CRITEO,
    CRITEO_TB,
    TABLE_II,
    build_stream,
)

TB = 1024 ** 4


class TestTableII:
    def test_all_five_rows_present(self):
        names = {s.name for s in TABLE_II}
        assert names == {"Avazu", "Criteo", "BD-TB", "Avazu-TB", "Criteo-TB"}

    def test_scaled_variants_are_50tb(self):
        for spec in (BD_TB, AVAZU_TB, CRITEO_TB):
            assert spec.embedding_bytes == 50 * TB
            assert spec.num_samples == 5_000_000_000

    def test_public_sets_match_paper_sizes(self):
        assert AVAZU.dataset_gb == pytest.approx(4.7, rel=0.01)
        assert CRITEO.dataset_gb == pytest.approx(11.0, rel=0.01)
        assert AVAZU.embedding_tb * 1024 == pytest.approx(0.55, rel=0.01)

    def test_ingest_volume_matches_paper(self):
        # ~25 GB of new training data per 5 minutes at 100M requests
        vol = BD_TB.ingest_bytes_per_window(300.0)
        assert vol == pytest.approx(25e9, rel=0.05)


class TestScaledTableSizes:
    def test_distributes_total(self):
        sizes = CRITEO.scaled_table_sizes(10_000)
        assert len(sizes) == 26
        assert abs(sum(sizes) - 10_000) / 10_000 < 0.2

    def test_power_law_profile(self):
        sizes = CRITEO.scaled_table_sizes(10_000)
        assert sizes[0] > sizes[5] > sizes[-1] or sizes[-1] >= 50

    def test_min_rows_enforced(self):
        sizes = BD_TB.scaled_table_sizes(500, min_rows=50)
        assert min(sizes) >= 50


class TestBuildStream:
    def test_field_cap(self):
        stream = build_stream(CRITEO, total_rows=600, num_fields=4)
        assert len(stream.config.table_sizes) == 4

    def test_default_field_cap_is_six(self):
        stream = build_stream(BD_TB, total_rows=600)
        assert len(stream.config.table_sizes) == 6

    def test_overrides_forwarded(self):
        stream = build_stream(AVAZU, total_rows=600, drift_rate=0.5)
        assert stream.config.drift_rate == 0.5

    def test_stream_is_usable(self):
        stream = build_stream(AVAZU, total_rows=600, seed=7)
        b = stream.next_batch(16)
        assert b.sparse_ids.shape[1] == len(stream.config.table_sizes)
