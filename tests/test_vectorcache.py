"""Equivalence tests: BatchLRUCache == sequential LRUCache, bit for bit.

Same contract as ``test_kernels_equivalence.py`` established for the PR-1
kernels: the batched implementation must reproduce the scalar reference's
observable behaviour exactly — per-access hit/miss sequence, ``used_bytes``
/ entry count after every batch, the internal recency order, and the
eviction sequence — on randomized traces across cache regimes (hot,
thrashed, tiny, zero, oversized).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cache import CacheStats, LRUCache
from repro.hardware.vectorcache import BatchAccessResult, BatchLRUCache


class RecordingLRUCache(LRUCache):
    """Seed-semantics LRU that also records its eviction sequence."""

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self.evicted: list[int] = []

    def access(self, key, size_bytes):
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        if size_bytes > self.capacity_bytes:
            return False
        self._entries[key] = size_bytes
        self._used += size_bytes
        while self._used > self.capacity_bytes:
            k, s = self._entries.popitem(last=False)
            self._used -= s
            self.evicted.append(k)
        return False


def run_reference(ref: RecordingLRUCache, keys, size) -> np.ndarray:
    return np.array([ref.access(int(k), size) for k in keys], dtype=bool)


def assert_same_state(batch: BatchLRUCache, ref: RecordingLRUCache) -> None:
    assert batch.used_bytes == ref.used_bytes
    assert batch.num_entries == ref.num_entries
    np.testing.assert_array_equal(
        batch.keys_lru_to_mru(), np.fromiter(ref._entries, dtype=np.int64)
    )


def check_trace(capacity_bytes, size, trace, batch_lens) -> None:
    """Feed one trace through both caches, comparing after every batch."""
    batch = BatchLRUCache(capacity_bytes)
    ref = RecordingLRUCache(capacity_bytes)
    all_evicted: list[np.ndarray] = []
    start = 0
    for blen in batch_lens:
        part = trace[start : start + blen]
        start += blen
        result = batch.access_many(part, size)
        expected = run_reference(ref, part, size)
        np.testing.assert_array_equal(result.hit_mask, expected)
        np.testing.assert_array_equal(
            result.fill_bytes, np.where(expected, 0, size)
        )
        all_evicted.append(result.evicted_keys)
        assert_same_state(batch, ref)
    np.testing.assert_array_equal(
        np.concatenate(all_evicted) if all_evicted else np.empty(0),
        np.array(ref.evicted, dtype=np.int64),
    )


def split_lengths(n, num_batches, rng):
    if num_batches <= 1:
        return [n]
    cuts = np.sort(rng.integers(0, n + 1, size=num_batches - 1))
    return np.diff(np.r_[0, cuts, n]).tolist()


CACHE_REGIMES = [
    # (capacity_entries, universe) — hot set fits / thrashes / tiny cache
    (64, 32),  # everything fits after warmup
    (64, 256),  # moderate thrash
    (8, 1024),  # heavy thrash, frontier races touches
    (1, 16),  # single-entry cache
    (500, 600),  # near-capacity, many decision keys
]


@pytest.mark.parametrize("capacity_entries,universe", CACHE_REGIMES)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_randomized_traces_match_sequential(capacity_entries, universe, seed):
    rng = np.random.default_rng(seed)
    size = 8
    for trial in range(4):
        n = int(rng.integers(1, 4000))
        if trial % 2:
            trace = rng.integers(0, universe, n)  # uniform
        else:
            trace = rng.zipf(1.3, size=n) % universe  # skewed
        lens = split_lengths(n, int(rng.integers(1, 6)), rng)
        check_trace(capacity_entries * size, size, trace.astype(np.int64), lens)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_large_decision_chunks_hit_vectorized_resolver(seed):
    """Force >=512 touched residents per chunk: the rounds resolver path.

    The dispatch in ``_access_chunk`` sends chunks with many decisions
    through ``_resolve_chunk`` (optimistic rounds) rather than the scalar
    walker; a hot zipf trace against a multi-thousand-entry cache is the
    engine-shaped workload that exercises it.
    """
    rng = np.random.default_rng(seed)
    size = 8
    capacity_entries = 4096
    universe = 12_000
    # Warm so the cache is full of residents, then a hot trace re-touches
    # thousands of them per chunk while cold keys push the frontier.
    warm = rng.permutation(universe)[:capacity_entries]
    hot = warm[rng.integers(0, capacity_entries, 6000)]
    cold = rng.integers(0, universe, 6000)
    trace = np.empty(12_000, dtype=np.int64)
    trace[::2] = hot
    trace[1::2] = cold
    check_trace(
        capacity_entries * size,
        size,
        np.concatenate([warm, trace]),
        [capacity_entries, 12_000],
    )


@given(
    keys=st.lists(st.integers(0, 40), min_size=1, max_size=300),
    capacity_entries=st.integers(1, 24),
    num_batches=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=120, deadline=None)
def test_property_equivalence(keys, capacity_entries, num_batches, seed):
    rng = np.random.default_rng(seed)
    trace = np.array(keys, dtype=np.int64)
    lens = split_lengths(len(keys), num_batches, rng)
    check_trace(capacity_entries * 8, 8, trace, lens)


def test_duplicate_keys_within_one_batch():
    batch = BatchLRUCache(10 * 8)
    result = batch.access_many(np.array([5, 5, 5, 7, 5]), 8)
    np.testing.assert_array_equal(
        result.hit_mask, [False, True, True, False, True]
    )


def test_eviction_then_retouch_within_batch():
    """A resident key can be evicted and re-missed inside one batch."""
    capacity = 4 * 8
    batch = BatchLRUCache(capacity)
    ref = RecordingLRUCache(capacity)
    warm = np.array([1, 2, 3, 4])
    batch.access_many(warm, 8)
    run_reference(ref, warm, 8)
    # 1 is LRU; three inserts evict 1, 2, 3; touching 1 must now MISS and
    # its re-insert evicts 4.
    trace = np.array([10, 11, 12, 1])
    result = batch.access_many(trace, 8)
    expected = run_reference(ref, trace, 8)
    np.testing.assert_array_equal(result.hit_mask, expected)
    assert not result.hit_mask[3]
    np.testing.assert_array_equal(
        result.evicted_keys, np.array(ref.evicted, dtype=np.int64)
    )
    assert_same_state(batch, ref)


def test_frontier_skips_touched_residents():
    """A resident touched before the frontier reaches it escapes eviction."""
    capacity = 3 * 8
    batch = BatchLRUCache(capacity)
    ref = RecordingLRUCache(capacity)
    warm = np.array([1, 2, 3])
    batch.access_many(warm, 8)
    run_reference(ref, warm, 8)
    # Touch the LRU (1) first: inserts must evict 2 then 3, never 1.
    trace = np.array([1, 50, 51])
    result = batch.access_many(trace, 8)
    expected = run_reference(ref, trace, 8)
    np.testing.assert_array_equal(result.hit_mask, expected)
    assert result.hit_mask[0]
    np.testing.assert_array_equal(result.evicted_keys, [2, 3])
    assert_same_state(batch, ref)


def test_zero_capacity_all_miss():
    batch = BatchLRUCache(0)
    result = batch.access_many(np.array([1, 1, 2]), 8)
    assert not result.hit_mask.any()
    assert batch.num_entries == 0 and batch.used_bytes == 0
    assert result.fill_bytes.tolist() == [8, 8, 8]


def test_oversized_objects_bypass():
    batch = BatchLRUCache(100)
    result = batch.access_many(np.array([1, 1]), 200)
    assert not result.hit_mask.any()
    assert 1 not in batch
    assert result.total_fill_bytes == 400


def test_zero_size_entries_cacheable():
    ref = RecordingLRUCache(0)
    batch = BatchLRUCache(0)
    trace = np.array([3, 3, 4, 3])
    np.testing.assert_array_equal(
        batch.access_many(trace, 0).hit_mask, run_reference(ref, trace, 0)
    )
    assert_same_state(batch, ref)


def test_mixed_sizes_fall_back_exactly():
    capacity = 100
    batch = BatchLRUCache(capacity)
    ref = RecordingLRUCache(capacity)
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 12, 200)
    sizes = rng.integers(1, 40, 200)
    result = batch.access_many(keys, sizes)
    expected = np.array(
        [ref.access(int(k), int(s)) for k, s in zip(keys, sizes)], dtype=bool
    )
    np.testing.assert_array_equal(result.hit_mask, expected)
    np.testing.assert_array_equal(
        result.evicted_keys, np.array(ref.evicted, dtype=np.int64)
    )
    assert_same_state(batch, ref)
    # A later uniform batch against the mixed resident state stays exact.
    more = rng.integers(0, 12, 100)
    np.testing.assert_array_equal(
        batch.access_many(more, 8).hit_mask, run_reference(ref, more, 8)
    )
    assert_same_state(batch, ref)


def test_scalar_access_parity_and_contains():
    batch = BatchLRUCache(3 * 8)
    ref = RecordingLRUCache(3 * 8)
    for k in [1, 2, 3, 1, 4, 2, 5, 1]:
        assert batch.access(k, 8) == ref.access(k, 8)
    assert_same_state(batch, ref)
    assert 1 in batch and "not-a-key" not in batch


def test_invalidate_and_clear():
    batch = BatchLRUCache(1000)
    batch.access_many(np.array([1, 2, 3]), 100)
    assert batch.invalidate(2)
    assert not batch.invalidate(2)
    assert batch.used_bytes == 200 and 2 not in batch
    batch.clear()
    assert batch.num_entries == 0 and batch.used_bytes == 0


def test_stats_accumulate_across_calls():
    batch = BatchLRUCache(10_000)
    stats = CacheStats()
    batch.access_many(np.array([1, 2, 1]), 100, stats=stats)
    batch.access_many(np.array([2, 9]), 100, stats=stats)
    assert stats.hits == 2 and stats.misses == 3


def test_empty_batch():
    batch = BatchLRUCache(100)
    result = batch.access_many(np.empty(0, dtype=np.int64), 8)
    assert isinstance(result, BatchAccessResult)
    assert result.hit_mask.size == 0 and result.num_evictions == 0


def test_rejects_negative_sizes_and_bad_lengths():
    batch = BatchLRUCache(100)
    with pytest.raises(ValueError):
        batch.access_many(np.array([1]), -4)
    with pytest.raises(ValueError):
        batch.access_many(np.array([1, 2]), np.array([4]))
    with pytest.raises(ValueError):
        BatchLRUCache(-1)


class TestIntervalCache:
    """The CLOCK-style fast lane: exact to its own model, subset of LRU."""

    def reference(self, trace, window):
        lastpos = {}
        exp = np.zeros(len(trace), dtype=bool)
        for j, k in enumerate(trace.tolist()):
            if k in lastpos and j - lastpos[k] <= window:
                exp[j] = True
            lastpos[k] = j
        return exp

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_positional_window_model(self, seed):
        from repro.hardware.vectorcache import IntervalCache

        rng = np.random.default_rng(seed)
        for _ in range(30):
            w = int(rng.integers(1, 50))
            uni = int(rng.integers(2, 90))
            n = int(rng.integers(1, 500))
            trace = rng.integers(0, uni, n)
            cache = IntervalCache(w * 8, universe=uni)
            cut = int(rng.integers(0, n + 1))
            got = np.concatenate(
                [
                    cache.access_many(trace[:cut], 8).hit_mask,
                    cache.access_many(trace[cut:], 8).hit_mask,
                ]
            )
            np.testing.assert_array_equal(got, self.reference(trace, w))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_hits_are_subset_of_exact_lru(self, seed):
        from repro.hardware.vectorcache import IntervalCache

        rng = np.random.default_rng(seed)
        trace = rng.integers(0, 300, 3000)
        itv = IntervalCache(64 * 8, universe=300).access_many(trace, 8)
        ref = RecordingLRUCache(64 * 8)
        lru_hits = run_reference(ref, trace, 8)
        assert not (itv.hit_mask & ~lru_hits).any()

    def test_out_of_universe_keys_bypass(self):
        from repro.hardware.vectorcache import IntervalCache

        cache = IntervalCache(4 * 8, universe=100)
        trace = np.array([1, 100, -1, 1, 100, 7])
        result = cache.access_many(trace, 8)
        # in-range keys behave as if the bypasses were absent...
        np.testing.assert_array_equal(
            result.hit_mask, [False, False, False, True, False, False]
        )
        # ...and neither the clock nor any slot was touched by them
        assert 100 not in cache and -1 not in cache
        assert 7 in cache and 1 in cache

    def test_oversized_and_validation(self):
        from repro.hardware.vectorcache import IntervalCache

        cache = IntervalCache(10, universe=50)
        assert not cache.access_many(np.array([1, 1]), 20).hit_mask.any()
        with pytest.raises(ValueError):
            IntervalCache(10, universe=None)
        with pytest.raises(ValueError):
            cache.access_many(np.array([1, 2]), np.array([8, 16]))

    def test_invalidate_and_clear(self):
        from repro.hardware.vectorcache import IntervalCache

        cache = IntervalCache(4 * 8, universe=50)
        cache.access_many(np.array([1, 2, 3]), 8)
        assert 2 in cache
        assert cache.invalidate(2) and 2 not in cache
        assert not cache.invalidate(2)
        cache.clear()
        assert 1 not in cache and cache.num_entries == 0
