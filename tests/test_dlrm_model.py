"""End-to-end DLRM tests: forward, backward, training, state management."""

import numpy as np
import pytest

from repro.dlrm.model import DLRM, DLRMConfig, sigmoid
from repro.dlrm.optim import SGD, RowwiseAdagrad


@pytest.fixture
def model():
    return DLRM(
        DLRMConfig(
            num_dense=3,
            embedding_dim=4,
            table_sizes=(20, 15),
            bottom_mlp=(8,),
            top_mlp=(8,),
            seed=1,
        )
    )


@pytest.fixture
def batch():
    rng = np.random.default_rng(2)
    return (
        rng.normal(size=(6, 3)),
        rng.integers(0, 15, size=(6, 2)),
        rng.integers(0, 2, size=6).astype(float),
    )


class TestSigmoid:
    def test_range_and_symmetry(self):
        z = np.array([-30.0, -1.0, 0.0, 1.0, 30.0])
        s = sigmoid(z)
        assert (s > 0).all() and (s < 1).all()
        assert s[2] == pytest.approx(0.5)
        assert s[1] + s[3] == pytest.approx(1.0)

    def test_no_overflow_for_large_negative(self):
        assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0, abs=1e-12)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DLRMConfig(num_dense=0).validate()
        with pytest.raises(ValueError):
            DLRMConfig(table_sizes=()).validate()


class TestForward:
    def test_probabilities_in_range(self, model, batch):
        dense, sids, _ = batch
        probs = model.predict(dense, sids)
        assert probs.shape == (6,)
        assert ((probs > 0) & (probs < 1)).all()

    def test_overlay_changes_output(self, model, batch):
        dense, sids, _ = batch
        base = model.predict(dense, sids)

        def overlay(field, ids, rows):
            return rows + 0.5

        adjusted = model.predict(dense, sids, overlay=overlay)
        assert not np.allclose(base, adjusted)

    def test_identity_overlay_is_noop(self, model, batch):
        dense, sids, _ = batch
        base = model.predict(dense, sids)
        same = model.predict(dense, sids, overlay=lambda f, i, r: r)
        np.testing.assert_allclose(base, same)


class TestBackward:
    def test_embedding_gradient_finite_difference(self, model, batch):
        dense, sids, labels = batch
        res = model.loss_and_grads(dense, sids, labels)
        table = model.embeddings[0]
        idx = int(res.embedding_grads[0].indices[0])
        analytic = res.embedding_grads[0].rows[0]
        eps = 1e-6
        for j in range(4):
            table.weight[idx, j] += eps
            lp = model.loss_and_grads(dense, sids, labels).loss
            table.weight[idx, j] -= 2 * eps
            lm = model.loss_and_grads(dense, sids, labels).loss
            table.weight[idx, j] += eps
            assert analytic[j] == pytest.approx((lp - lm) / (2 * eps), abs=1e-6)

    def test_dense_gradient_finite_difference(self, model, batch):
        dense, sids, labels = batch
        res = model.loss_and_grads(dense, sids, labels)
        eps = 1e-6
        w = model.top.weights[0]
        gw = res.top_grads.weights[0]
        w[1, 1] += eps
        lp = model.loss_and_grads(dense, sids, labels).loss
        w[1, 1] -= 2 * eps
        lm = model.loss_and_grads(dense, sids, labels).loss
        w[1, 1] += eps
        assert gw[1, 1] == pytest.approx((lp - lm) / (2 * eps), abs=1e-6)

    def test_loss_is_bce(self, model, batch):
        dense, sids, labels = batch
        res = model.loss_and_grads(dense, sids, labels)
        probs = model.predict(dense, sids)
        expect = -np.mean(
            labels * np.log(probs) + (1 - labels) * np.log(1 - probs)
        )
        assert res.loss == pytest.approx(expect, rel=1e-6)

    def test_embedding_grads_are_row_sparse(self, model, batch):
        dense, sids, labels = batch
        res = model.loss_and_grads(dense, sids, labels)
        for f, grad in enumerate(res.embedding_grads):
            assert set(grad.indices.tolist()) == set(
                np.unique(sids[:, f]).tolist()
            )


class TestTraining:
    @pytest.mark.parametrize("opt_cls", [SGD, RowwiseAdagrad])
    def test_loss_decreases(self, model, batch, opt_cls):
        dense, sids, labels = batch
        opt = opt_cls(lr=0.1)
        first = model.train_step(dense, sids, labels, opt).loss
        for _ in range(20):
            last = model.train_step(dense, sids, labels, opt).loss
        assert last < first

    def test_frozen_dense_leaves_mlps_unchanged(self, model, batch):
        dense, sids, labels = batch
        before = [w.copy() for w in model.bottom.weights]
        model.train_step(dense, sids, labels, SGD(lr=0.1), update_dense=False)
        for w_before, w_after in zip(before, model.bottom.weights):
            np.testing.assert_array_equal(w_before, w_after)

    def test_training_touches_embeddings(self, model, batch):
        dense, sids, labels = batch
        model.train_step(dense, sids, labels, SGD(lr=0.1))
        assert model.embeddings.touched_fraction() > 0


class TestState:
    def test_state_dict_roundtrip(self, model, batch):
        dense, sids, labels = batch
        state = model.state_dict()
        model.train_step(dense, sids, labels, SGD(lr=0.5))
        changed = model.predict(dense, sids)
        model.load_state_dict(state)
        restored = model.predict(dense, sids)
        assert not np.allclose(changed, restored) or np.allclose(
            changed, restored, atol=1e-12
        )
        # restored must equal the original pre-training prediction
        model2 = DLRM(model.config)
        model2.load_state_dict(state)
        np.testing.assert_allclose(
            restored, model2.predict(dense, sids), atol=1e-12
        )

    def test_copy_is_deep(self, model, batch):
        dense, sids, labels = batch
        dup = model.copy()
        dup.train_step(dense, sids, labels, SGD(lr=0.5))
        assert not np.allclose(
            dup.embeddings[0].weight, model.embeddings[0].weight
        )

    def test_sizes(self, model):
        assert model.num_sparse_fields == 2
        assert model.embedding_bytes == (20 + 15) * 4 * 8
        assert model.dense_params > 0
