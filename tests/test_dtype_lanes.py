"""Dtype-lane policy tests: checked downcasts, lane plumbing, serving parity.

The model plane runs on an explicit lane policy
(:class:`repro.core.dtypes.DTypePolicy`): training computes in float64
(``TRAIN``) and serving in float32 (``SERVE``), with exactly one checked
crossing — the publish-time downcast.  These tests pin the policy
objects, the coercers' failure modes, the int32 slot lanes, the halved
byte accounting on float32-lane shard stores, and — the property that
makes the whole scheme safe — float32 serving predictions staying within
tolerance of the float64 train stack across random shapes and seeds.
"""

import numpy as np
import pytest

from repro.cluster.shardstore import ShardClient, ShardedParameterStore
from repro.core.dtypes import SERVE, TRAIN, as_float32_rows, as_rows
from repro.core.hot_index import HotIndexFilter
from repro.core.kernels import IdSlotTable
from repro.dlrm.mlp import MLP, clip_by_global_norm
from repro.dlrm.model import DLRM, DLRMConfig
from repro.hardware.vectorcache import BatchLRUCache, IntervalCache
from repro.serving.engine import NodeSimConfig


class TestPolicyObjects:
    def test_train_and_serve_lanes(self):
        assert TRAIN.row_dtype == np.dtype(np.float64)
        assert TRAIN.slot_dtype == np.dtype(np.int64)
        assert SERVE.row_dtype == np.dtype(np.float32)
        assert SERVE.slot_dtype == np.dtype(np.int32)

    def test_row_nbytes_halves_on_serve(self):
        for dim in (1, 16, 128):
            assert TRAIN.row_nbytes(dim) == 8 * dim
            assert SERVE.row_nbytes(dim) == 4 * dim
            assert SERVE.row_nbytes(dim) * 2 == TRAIN.row_nbytes(dim)

    def test_as_rows_lands_on_policy_lane(self):
        rows = [[1.0, 2.0], [3.0, 4.0]]
        assert as_rows(TRAIN, rows).dtype == np.float64
        assert as_rows(SERVE, rows).dtype == np.float32
        model = DLRMConfig()
        assert model.policy is TRAIN


class TestCheckedDowncast:
    def test_exact_values_pass(self):
        wide = np.array([[1.0, -0.5, 1024.0]])
        narrow = as_float32_rows(wide, name="rows")
        assert narrow.dtype == np.float32
        np.testing.assert_array_equal(narrow.astype(np.float64), wide)

    def test_overflow_to_inf_raises(self):
        wide = np.array([[1e300]])
        with pytest.raises(ValueError, match="rows"):
            as_float32_rows(wide, name="rows")

    def test_subnormal_collapse_raises(self):
        wide = np.array([[1e-300]])
        with pytest.raises(ValueError):
            as_float32_rows(wide, name="rows", rtol=1e-6)

    def test_precision_loss_beyond_rtol_raises(self):
        # 1 + 2^-40 is exactly representable in float64 but rounds to
        # 1.0 in float32 — a 9e-13 relative error, far past rtol=0.
        wide = np.array([[1.0 + 2.0 ** -40]])
        with pytest.raises(ValueError):
            as_float32_rows(wide, name="rows", rtol=0.0)
        out = as_float32_rows(wide, name="rows", rtol=1e-6)
        assert out.dtype == np.float32

    def test_preexisting_nonfinite_passes_through(self):
        wide = np.array([[np.nan, np.inf, -np.inf]])
        narrow = as_float32_rows(wide, name="rows")
        assert np.isnan(narrow[0, 0])
        assert np.isposinf(narrow[0, 1])
        assert np.isneginf(narrow[0, 2])


class TestSlotLanes:
    def test_int32_slot_table_matches_int64(self):
        rng = np.random.default_rng(0)
        wide = IdSlotTable(64, universe=1000)
        narrow = IdSlotTable(64, universe=1000, slot_dtype=np.int32)
        for _ in range(5):
            ids = rng.integers(0, 1000, size=32)
            s_w, e_w = wide.insert(ids)
            s_n, e_n = narrow.insert(ids)
            np.testing.assert_array_equal(s_w, s_n)
            np.testing.assert_array_equal(e_w, e_n)
            probe = rng.integers(0, 1000, size=16)
            np.testing.assert_array_equal(
                wide.lookup(probe), narrow.lookup(probe)
            )
        assert narrow.slots.dtype == np.int32
        assert narrow.nbytes < wide.nbytes

    def test_capacity_must_fit_slot_dtype(self):
        with pytest.raises(OverflowError):
            IdSlotTable(1 << 40, slot_dtype=np.int32)

    def test_hot_index_float32_stamps(self):
        wide = HotIndexFilter(2, expiry_s=10.0, num_rows=100)
        narrow = HotIndexFilter(
            2, expiry_s=10.0, num_rows=100, stamp_dtype=np.float32
        )
        ids = np.array([3, 7, 50])
        for f in (wide, narrow):
            f.mark(0, ids, now=1.0)
            f.advance(5.0)
        probe = np.array([3, 7, 50, 51])
        np.testing.assert_array_equal(
            wide.is_hot(0, probe), narrow.is_hot(0, probe)
        )
        assert narrow.nbytes < wide.nbytes


class TestShardStoreLane:
    def _stores(self, dim=4):
        train = ShardedParameterStore(
            num_shards=2, row_bytes=None, row_dim=dim
        )
        serve = ShardedParameterStore(
            num_shards=2, row_bytes=None, row_dim=dim, row_dtype=np.float32
        )
        return train, serve

    def test_row_bytes_follow_the_lane(self):
        train, serve = self._stores(dim=4)
        assert train.row_bytes == 32
        assert serve.row_bytes == 16

    def test_non_float_lane_rejected(self):
        with pytest.raises(TypeError):
            ShardedParameterStore(num_shards=1, row_dtype=np.int32)

    def test_serve_store_downcasts_once_and_serves_float32(self):
        _, serve = self._stores(dim=4)
        ids = np.arange(8, dtype=np.int64)
        rows = np.linspace(0.0, 1.0, 32).reshape(8, 4)
        serve.publish_batch("emb", ids, rows)
        found, out = serve.pull_rows("emb", ids)
        assert found.all()
        assert out.dtype == np.float32
        np.testing.assert_allclose(
            out.astype(np.float64), rows, rtol=1e-6, atol=0
        )
        d_ids, d_rows, _version = serve.pull_delta("emb", 0)
        assert d_rows.dtype == np.float32
        assert d_ids.size == 8

    def test_publish_past_tolerance_raises(self):
        _, serve = self._stores(dim=1)
        with pytest.raises(ValueError):
            serve.publish_batch(
                "emb", np.array([0]), np.array([[1e300]])
            )

    def test_byte_accounting_halves_on_serve_lane(self):
        train, serve = self._stores(dim=4)
        ids = np.arange(16, dtype=np.int64)
        rows = np.ones((16, 4))
        train.publish_batch("emb", ids, rows)
        serve.publish_batch("emb", ids, rows)
        assert serve.total_bytes * 2 == train.total_bytes
        assert (
            serve.delta_volume_bytes("emb", 0) * 2
            == train.delta_volume_bytes("emb", 0)
        )

    def test_client_transfer_bytes_halve_on_serve_lane(self):
        train, serve = self._stores(dim=4)
        reports = []
        for store in (train, serve):
            client = ShardClient(store)
            client.stage(
                "emb", np.arange(8, dtype=np.int64), np.ones((8, 4))
            )
            reports.append(client.flush())
        assert reports[0].rows == reports[1].rows == 8
        assert reports[1].bytes * 2 == reports[0].bytes
        assert reports[1].seconds < reports[0].seconds

    def test_staged_rows_cross_onto_store_lane_at_stage_time(self):
        _, serve = self._stores(dim=1)
        client = ShardClient(serve)
        with pytest.raises(ValueError):
            client.stage("emb", np.array([0]), np.array([[1e300]]))


class TestLaneAwareCapacity:
    def test_batch_lru_capacity_rows(self):
        cache = BatchLRUCache(capacity_bytes=1 << 20)
        assert cache.capacity_rows(16, TRAIN) == (1 << 20) // 128
        assert cache.capacity_rows(16, SERVE) == (1 << 20) // 64
        assert (
            cache.capacity_rows(16, SERVE)
            == 2 * cache.capacity_rows(16, TRAIN)
        )

    def test_interval_cache_capacity_rows(self):
        cache = IntervalCache(capacity_bytes=1 << 20, universe=1000)
        assert cache.capacity_rows(32, SERVE) == (1 << 20) // 128

    def test_node_sim_config_for_lane(self):
        cfg = NodeSimConfig.for_lane(16, SERVE, num_rows=1000)
        assert cfg.row_bytes == 64
        assert cfg.num_rows == 1000
        assert NodeSimConfig.for_lane(16, TRAIN).row_bytes == 128
        with pytest.raises(ValueError):
            NodeSimConfig.for_lane(16, SERVE, row_bytes=99)


class TestServingParity:
    """Float32 serving must track the float64 train stack within tolerance."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_serving_copy_probs_within_tolerance(self, seed):
        rng = np.random.default_rng(seed)
        config = DLRMConfig(
            num_dense=int(rng.integers(2, 8)),
            embedding_dim=int(rng.choice([4, 8, 16])),
            table_sizes=tuple(
                int(s) for s in rng.integers(20, 200, size=rng.integers(1, 5))
            ),
            bottom_mlp=(int(rng.integers(4, 32)),),
            top_mlp=(int(rng.integers(4, 32)),),
            seed=seed,
        )
        model = DLRM(config)
        serving = model.serving_copy()
        assert serving.config.policy is SERVE
        assert serving.bottom.weights[0].dtype == np.float32

        batch = int(rng.integers(1, 33))
        dense = rng.normal(size=(batch, config.num_dense))
        sparse = np.stack(
            [
                rng.integers(0, size, size=batch)
                for size in config.table_sizes
            ],
            axis=1,
        )
        wide = model.predict(dense, sparse)
        narrow = serving.predict(dense, sparse)
        assert narrow.dtype == np.float32
        # Probabilities sit in [0, 1]; a handful of float32 roundings
        # through the stack stays well inside 1e-4 absolute.
        np.testing.assert_allclose(
            narrow.astype(np.float64), wide, atol=1e-4
        )

    def test_serving_copy_is_independent(self):
        model = DLRM(DLRMConfig(seed=5))
        serving = model.serving_copy()
        serving.bottom.weights[0][:] = 0.0
        assert not np.allclose(model.bottom.weights[0], 0.0)


class TestGradClipping:
    def test_clip_by_global_norm(self):
        rng = np.random.default_rng(9)
        mlp = MLP([4, 8, 2], rng=rng)
        x = rng.normal(size=(16, 4))
        _, cache = mlp.forward(x)
        _, grads = mlp.backward(cache, rng.normal(size=(16, 2)))
        norm = grads.global_norm()
        assert norm > 0

        clipped, pre = clip_by_global_norm(grads, norm / 2)
        assert pre == pytest.approx(norm)
        assert clipped.global_norm() == pytest.approx(norm / 2, rel=1e-12)

        passthrough, pre2 = clip_by_global_norm(grads, norm * 2)
        assert passthrough is grads
        assert pre2 == pytest.approx(norm)
        with pytest.raises(ValueError):
            clip_by_global_norm(grads, 0.0)
