"""Tests for the Hot Index Filter."""

import numpy as np
import pytest

from repro.core.hot_index import HotIndexFilter


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            HotIndexFilter(0)
        with pytest.raises(ValueError):
            HotIndexFilter(1, expiry_s=0)

    def test_unmarked_ids_cold(self):
        f = HotIndexFilter(2)
        mask = f.is_hot(0, np.array([1, 2, 3]))
        assert not mask.any()

    def test_marked_ids_hot(self):
        f = HotIndexFilter(2)
        f.mark(0, np.array([1, 3]))
        mask = f.is_hot(0, np.array([1, 2, 3]))
        assert mask.tolist() == [True, False, True]

    def test_fields_independent(self):
        f = HotIndexFilter(2)
        f.mark(0, np.array([1]))
        assert not f.is_hot(1, np.array([1])).any()

    def test_callable_alias(self):
        f = HotIndexFilter(1)
        f.mark(0, np.array([4]))
        assert f(0, np.array([4])).all()

    def test_clear_one_field(self):
        f = HotIndexFilter(2)
        f.mark(0, np.array([1]))
        f.mark(1, np.array([2]))
        f.clear(0)
        assert not f.is_hot(0, np.array([1])).any()
        assert f.is_hot(1, np.array([2])).all()

    def test_clear_all(self):
        f = HotIndexFilter(2)
        f.mark(0, np.array([1]))
        f.clear()
        assert f.hot_count(0) == 0


class TestExpiry:
    def test_entries_expire(self):
        f = HotIndexFilter(1, expiry_s=10.0)
        f.mark(0, np.array([1]), now=0.0)
        assert f.is_hot(0, np.array([1])).all()
        f.advance(20.0)
        assert not f.is_hot(0, np.array([1])).any()

    def test_remarking_refreshes(self):
        f = HotIndexFilter(1, expiry_s=10.0)
        f.mark(0, np.array([1]), now=0.0)
        f.mark(0, np.array([1]), now=8.0)
        f.advance(15.0)
        assert f.is_hot(0, np.array([1])).all()

    def test_hot_count_respects_expiry(self):
        f = HotIndexFilter(1, expiry_s=10.0)
        f.mark(0, np.array([1]), now=0.0)
        f.mark(0, np.array([2]), now=9.0)
        f.advance(12.0)
        assert f.hot_count(0) == 1

    def test_sweep_removes_expired(self):
        f = HotIndexFilter(1, expiry_s=5.0)
        f.mark(0, np.array([1, 2]), now=0.0)
        f.advance(10.0)
        assert f.sweep() == 2
        assert len(f._marked[0]) == 0

    def test_sweep_noop_without_expiry(self):
        f = HotIndexFilter(1)
        f.mark(0, np.array([1]))
        assert f.sweep() == 0

    def test_clock_never_goes_backwards(self):
        f = HotIndexFilter(1, expiry_s=10.0)
        f.advance(100.0)
        f.mark(0, np.array([1]), now=50.0)  # stale stamp ignored for clock
        assert f.is_hot(0, np.array([1])).all()
