"""Tracing plane: sim-clock spans, flight recorder, trace determinism."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.obs import FlightRecorder, SimClock, Tracer, WallClock
from repro.obs.__main__ import run_sync_scenario


def _cli_output(argv: list[str], hash_seed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    return subprocess.run(
        [sys.executable, "-m", "repro.obs", *argv],
        capture_output=True, env=env, check=True,
    ).stdout


class TestSimClock:
    def test_advance_and_set(self):
        clock = SimClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        clock.set(10.0)
        assert clock.now() == 10.0

    def test_time_cannot_move_backwards(self):
        clock = SimClock(start=5.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(4.0)

    def test_wall_clock_is_monotonic(self):
        clock = WallClock()
        assert clock.now() <= clock.now()


class TestTracer:
    def test_nested_spans_record_parentage_and_duration(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer.op") as outer:
            tracer.advance(1.0)
            with tracer.span("inner.op", rows=3) as inner:
                assert tracer.active_depth == 2
                tracer.advance(0.5)
        assert tracer.active_depth == 0
        assert inner.parent_id == outer.span_id
        assert inner.duration == pytest.approx(0.5)
        assert outer.duration == pytest.approx(1.5)
        assert inner.attrs == {"rows": 3}

    def test_span_ids_are_sequential(self):
        tracer = Tracer(clock=SimClock())
        with tracer.span("a.b"):
            pass
        with tracer.span("c.d"):
            pass
        assert [s.span_id for s in tracer.spans] == [1, 2]

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer(clock=SimClock())
        with pytest.raises(RuntimeError):
            with tracer.span("fail.op"):
                raise RuntimeError("boom")
        (span,) = list(tracer.spans)
        assert span.attrs["error"] == "RuntimeError"
        assert span.end is not None

    def test_span_names_must_be_dotted_literals(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.span("NotDotted")

    def test_advance_is_noop_on_wall_clock(self):
        tracer = Tracer()  # WallClock by default
        tracer.advance(100.0)  # must not raise or jump anything

    def test_completed_spans_feed_recorder(self):
        recorder = FlightRecorder(capacity=4)
        tracer = Tracer(clock=SimClock(), recorder=recorder)
        with tracer.span("comp.sub.op", rows=2):
            tracer.advance(0.25)
        (event,) = recorder.events("comp.sub")
        assert event.kind == "span"
        assert event.message == "comp.sub.op"
        assert dict(event.attrs)["rows"] == 2

    def test_dump_json_is_deterministic(self):
        def one():
            tracer = Tracer(clock=SimClock())
            with tracer.span("a.op", n=1):
                tracer.advance(0.125)
            return tracer.dump_json()

        assert one() == one()


class TestFlightRecorder:
    def test_ring_capacity_per_component(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record("comp.a", "tick", f"event {i}")
        rec.record("comp.b", "tick", "other")
        events = rec.events("comp.a")
        assert len(events) == 3
        assert events[0].message == "event 2"  # oldest two fell off
        assert rec.components == ["comp.a", "comp.b"]

    def test_merged_events_are_seq_ordered(self):
        rec = FlightRecorder()
        rec.record("b.x", "k", "first")
        rec.record("a.y", "k", "second")
        assert [e.message for e in rec.events()] == ["first", "second"]

    def test_dump_text_and_clear(self):
        rec = FlightRecorder()
        rec.record("comp.a", "tick", "hello", t=1.5, rows=3)
        text = rec.dump_text()
        assert "comp.a" in text and "hello" in text and "rows=3" in text
        rec.clear()
        assert rec.dump_text() == "(flight recorder empty)"


class TestTraceDeterminism:
    """The splitmix64-style pin: simulated traces are process-invariant."""

    def test_scenario_trace_is_identical_in_process(self):
        tracer_a, _ = run_sync_scenario(windows=2, seed=3)
        tracer_b, _ = run_sync_scenario(windows=2, seed=3)
        assert tracer_a.dump_json() == tracer_b.dump_json()

    def test_scenario_spans_ride_the_simulated_timeline(self):
        tracer, recorder = run_sync_scenario(windows=2, seed=0)
        dump = tracer.dump()
        windows = [s for s in dump if s["name"] == "obs.scenario.window"]
        flushes = [s for s in dump if s["name"] == "shardstore.client.flush"]
        assert len(windows) == 2 and len(flushes) == 2
        # Window spans start at the cluster.timeline schedule (60 s cadence)
        assert windows[0]["start"] == pytest.approx(60.0)
        assert windows[1]["start"] == pytest.approx(120.0)
        # Flush spans last exactly the alpha-beta modelled transfer time.
        assert flushes[0]["duration_s"] > 0
        assert recorder.events("shardstore.client")

    def test_trace_dump_byte_identical_across_processes(self):
        args = ["--dump", "trace", "--windows", "3"]
        out_a = _cli_output(args, hash_seed="0")
        out_b = _cli_output(args, hash_seed="42")
        assert out_a == out_b
        payload = json.loads(out_a)
        assert any(s["name"] == "shardstore.client.pull" for s in payload)

    def test_metrics_json_byte_identical_across_processes(self):
        args = ["--dump", "metrics", "--format", "json"]
        out_a = _cli_output(args, hash_seed="1")
        out_b = _cli_output(args, hash_seed="7")
        assert out_a == out_b


class TestCli:
    def test_selfcheck_passes(self):
        out = _cli_output(["--selfcheck"], hash_seed="0")
        assert b"ok" in out

    def test_prometheus_dump_mentions_shardstore_counters(self):
        out = _cli_output(["--dump", "metrics"], hash_seed="0")
        assert b"repro_shardstore_client_rows_published" in out
        assert b"# TYPE repro_serving_latency_ms histogram" in out

    def test_flight_dump_lists_components(self):
        out = _cli_output(["--dump", "flight"], hash_seed="0")
        assert b"shardstore.client" in out


class TestScenarioMetrics:
    def test_scenario_populates_registry_counters(self):
        from repro.obs import registry

        reg = registry()
        rows_pub = reg.counter("shardstore.client.rows_published")
        before = rows_pub.value
        run_sync_scenario(windows=2, rows_per_window=128, seed=1)
        # 2 windows x (128 + 64) staged rows flushed
        assert rows_pub.value - before == 2 * (128 + 64)
        assert np.isfinite(
            reg.histogram("shardstore.client.transfer_seconds").quantile(50)
        )
